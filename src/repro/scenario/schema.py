"""The scenario-document schema: structure, types, and cross-rules.

:func:`validate_scenario` takes the raw mapping out of
:mod:`~repro.scenario.yamlite` and returns a fully normalized document
(every section present, every default applied) or raises
:class:`SchemaError` naming the offending key path, with did-you-mean
suggestions for unknown keys and enum values.

A scenario document has two mutually exclusive modes:

* **sweep** — a ``sweep:`` section compiles the document onto
  :class:`~repro.faults.campaign.CampaignPlan`: many seeds, the
  stratified fault-kind mix, the full invariant battery per seed.
* **explicit** — a ``fault:`` section (or none, for failure-free
  smoke runs) builds one workload on one machine, optionally installs
  one fault plan, and judges the run against ``expect:``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..faults.kinds import FAULT_REGISTRY
from .checks import CHECK_REGISTRY, DEFAULT_CHECKS
from .registry import (ParamSpec, RegistryError, UnknownNameError,
                       unknown_name_message, validate_params)
from .shapes import SHAPE_REGISTRY
from .workloads import WORKLOAD_REGISTRY


class SchemaError(RegistryError):
    """A scenario document violated the schema."""


# ----------------------------------------------------------------------
# section schemas
# ----------------------------------------------------------------------

TOP_LEVEL_KEYS: Tuple[str, ...] = (
    "scenario", "description", "workload", "machine", "engine", "bus",
    "services", "sweep", "fault", "baseline", "expect", "max_events")

#: ``machine:`` — shape preset plus field-by-field MachineConfig
#: overrides (null = keep the preset/config default).
MACHINE_SPECS: Dict[str, ParamSpec] = {
    "shape": ParamSpec(str, "machine-shape preset name",
                       default="small"),
    "clusters": ParamSpec(int, "cluster count override",
                          default=None, nullable=True),
    "sync_reads_threshold": ParamSpec(int, "reads between syncs",
                                      default=None, nullable=True),
    "sync_time_threshold": ParamSpec(int, "ticks between syncs",
                                     default=None, nullable=True),
    "poll_interval": ParamSpec(int, "failure-detector poll ticks",
                               default=None, nullable=True),
    "server_sync_requests": ParamSpec(int,
                                      "server requests between syncs",
                                      default=None, nullable=True),
    "server_inbox_limit": ParamSpec(int,
                                    "bounded server-inbox depth",
                                    default=None, nullable=True),
    "server_inbox_policy": ParamSpec(str, "overflow policy",
                                     default=None, nullable=True,
                                     choices=("defer", "shed")),
    "seed": ParamSpec(int, "machine/workload RNG seed", default=0),
}

#: ``engine:`` — simulator-core selection (performance only: every
#: combination is pop-order-identical by contract, so an ``engine:``
#: block can never change what a scenario observes, only how fast it
#: runs).
ENGINE_SPECS: Dict[str, ParamSpec] = {
    "queue": ParamSpec(str, "event-queue backend name",
                       default="heap"),
    "queue_params": ParamSpec(dict, "backend-specific parameters",
                              default=None, nullable=True),
    "run_jobs": ParamSpec(int, "intra-run dispatch workers "
                               "(1 = serial, 0 = one per CPU)",
                          default=1),
}

#: ``bus:`` — the degraded-bus fault model (BusFaultConfig).
BUS_SPECS: Dict[str, ParamSpec] = {
    "loss_rate": ParamSpec(float, "per-attempt loss probability",
                           default=0.0),
    "garble_rate": ParamSpec(float, "per-attempt garble probability",
                             default=0.0),
    "retry_limit": ParamSpec(int, "attempts before failover",
                             default=None, nullable=True),
    "backoff_base": ParamSpec(int, "base retransmission backoff",
                              default=None, nullable=True),
    "failover_threshold": ParamSpec(int,
                                    "failures before a bus is dead",
                                    default=None, nullable=True),
    "seed": ParamSpec(int, "fault-stream seed", default=0),
}

#: ``workload:`` — a registered recipe plus its params.
WORKLOAD_SPECS: Dict[str, ParamSpec] = {
    "recipe": ParamSpec(str, "workload recipe name",
                        default="generated"),
    "params": ParamSpec(dict, "recipe parameters", default=None,
                        nullable=True),
}

#: ``sweep:`` — compile onto CampaignPlan.
SWEEP_SPECS: Dict[str, ParamSpec] = {
    "seeds": ParamSpec((int, list),
                       "seed count (int) or explicit seed list"),
    "base_seed": ParamSpec(int, "first seed when seeds is a count",
                           default=0),
    "kinds": ParamSpec(list, "fault kinds to stratify over "
                             "(null: every kind)",
                       default=None, nullable=True),
}

#: ``fault:`` — one explicit fault plan.
FAULT_SPECS: Dict[str, ParamSpec] = {
    "kind": ParamSpec(str, "fault kind name"),
    "params": ParamSpec(dict, "fault-kind parameters", default=None,
                        nullable=True),
    "survivable": ParamSpec(bool,
                            "override the kind's survivability grade",
                            default=None, nullable=True),
}

#: ``baseline:`` — the recovery-design shootout (experiment F5): run
#: every named design over the OLTP bank workload under every named
#: fault kind and report the recovery-time / p99-under-fault matrix.
BASELINE_SPECS: Dict[str, ParamSpec] = {
    "kinds": ParamSpec(list, "fault kinds to sweep the designs over"),
    "designs": ParamSpec(list, "recovery designs to compare "
                               "(null: all four)",
                         default=None, nullable=True),
    "clients": ParamSpec(int, "bank clients", default=3),
    "txns_per_client": ParamSpec(int, "transfers per client",
                                 default=12),
}

#: ``expect:`` — what the run is judged on (explicit mode).
EXPECT_SPECS: Dict[str, ParamSpec] = {
    "invariants": ParamSpec(list, "invariant checks to run",
                            default=None, nullable=True),
    "counters": ParamSpec(dict, "metric-counter bounds "
                                "(name -> min/max/equals)",
                          default=None, nullable=True),
    "survivable": ParamSpec(bool, "grade the behaviour checks expect",
                            default=None, nullable=True),
}

COUNTER_BOUND_SPECS: Dict[str, ParamSpec] = {
    "min": ParamSpec(int, "inclusive lower bound", default=None,
                     nullable=True),
    "max": ParamSpec(int, "inclusive upper bound", default=None,
                     nullable=True),
    "equals": ParamSpec(int, "exact expected value", default=None,
                        nullable=True),
}

#: Keys a sweep-mode scenario may set per section (the campaign
#: machinery owns everything else, by design — that is what keeps
#: scenario-compiled campaigns byte-identical to Python-built ones).
SWEEP_ALLOWED = {
    "machine": ("shape", "clusters"),
    "bus": ("loss_rate", "garble_rate"),
}


# ----------------------------------------------------------------------
# validation
# ----------------------------------------------------------------------

def _require_mapping(value: Any, where: str) -> Dict[str, Any]:
    if value is None:
        return {}
    if not isinstance(value, dict):
        raise SchemaError(f"{where}: must be a mapping, "
                          f"got {type(value).__name__}")
    return value


def _int_list(value: Any, where: str) -> List[int]:
    if not isinstance(value, list):
        raise SchemaError(f"{where}: must be a list of integers")
    out: List[int] = []
    for item in value:
        if isinstance(item, bool) or not isinstance(item, int):
            raise SchemaError(f"{where}: must be a list of integers, "
                              f"found {item!r}")
        out.append(item)
    return out


def _name_list(value: Any, registry, where: str) -> List[str]:
    if not isinstance(value, list):
        raise SchemaError(f"{where}: must be a list of names")
    for item in value:
        if not isinstance(item, str):
            raise SchemaError(f"{where}: must be a list of names, "
                              f"found {item!r}")
        if item not in registry:
            raise SchemaError(f"{where}: " + unknown_name_message(
                registry.what, item, registry.names()))
    return list(value)


def validate_scenario(doc: Any, source: str = "") -> Dict[str, Any]:
    """Validate and normalize one scenario document.

    Returns a document with every section present and every default
    applied; raises :class:`SchemaError` on any violation.
    """
    where = source or "scenario"
    doc = _require_mapping(doc, where)
    for key in doc:
        if key not in TOP_LEVEL_KEYS:
            raise SchemaError(f"{where}: " + unknown_name_message(
                "top-level key", key, TOP_LEVEL_KEYS))

    name = doc.get("scenario")
    if not isinstance(name, str) or not name:
        raise SchemaError(f"{where}: 'scenario:' must name the "
                          f"scenario (a non-empty string)")
    description = doc.get("description", "")
    if description is None:
        description = ""
    if not isinstance(description, str):
        raise SchemaError(f"{where}: description: must be a string")

    max_events = doc.get("max_events")
    if max_events is not None and (isinstance(max_events, bool)
                                   or not isinstance(max_events, int)
                                   or max_events < 1):
        raise SchemaError(f"{where}: max_events: must be a positive "
                          f"integer")

    try:
        machine = validate_params(
            _require_mapping(doc.get("machine"), "machine"),
            MACHINE_SPECS, "machine")
        bus = validate_params(
            _require_mapping(doc.get("bus"), "bus"),
            BUS_SPECS, "bus")
        workload = validate_params(
            _require_mapping(doc.get("workload"), "workload"),
            WORKLOAD_SPECS, "workload")
        engine = validate_params(
            _require_mapping(doc.get("engine"), "engine"),
            ENGINE_SPECS, "engine")
    except RegistryError as error:
        raise SchemaError(f"{where}: {error}") from None

    from ..sim.queues import QUEUE_REGISTRY
    if engine["queue"] not in QUEUE_REGISTRY:
        raise SchemaError(f"{where}: engine.queue: "
                          + unknown_name_message(
                              "event queue", engine["queue"],
                              QUEUE_REGISTRY.names()))
    try:
        engine["queue_params"] = validate_params(
            engine["queue_params"],
            QUEUE_REGISTRY.metadata(engine["queue"]).params,
            "engine.queue_params")
    except RegistryError as error:
        raise SchemaError(f"{where}: {error}") from None
    if engine["run_jobs"] < 0:
        raise SchemaError(f"{where}: engine.run_jobs: must be >= 0 "
                          f"(0 = one worker per CPU)")

    if machine["shape"] not in SHAPE_REGISTRY:
        raise SchemaError(f"{where}: machine.shape: "
                          + unknown_name_message(
                              "machine shape", machine["shape"],
                              SHAPE_REGISTRY.names()))

    recipe = workload["recipe"]
    if recipe not in WORKLOAD_REGISTRY:
        raise SchemaError(f"{where}: workload.recipe: "
                          + unknown_name_message(
                              "workload recipe", recipe,
                              WORKLOAD_REGISTRY.names()))
    try:
        workload["params"] = validate_params(
            workload["params"],
            WORKLOAD_REGISTRY.metadata(recipe).params,
            "workload.params")
    except RegistryError as error:
        raise SchemaError(f"{where}: {error}") from None

    sweep = doc.get("sweep")
    fault = doc.get("fault")
    baseline = doc.get("baseline")
    modes = [key for key, value in (("sweep", sweep), ("fault", fault),
                                    ("baseline", baseline))
             if value is not None]
    if len(modes) > 1:
        raise SchemaError(f"{where}: " + " and ".join(
            f"'{mode}:'" for mode in modes) + " are mutually "
            "exclusive — a scenario is a seeded campaign sweep, one "
            "explicit fault plan, or a recovery-design baseline "
            "shootout")

    normalized: Dict[str, Any] = {
        "scenario": name,
        "description": description,
        "workload": workload,
        "machine": machine,
        "engine": engine,
        "bus": bus,
        "services": _validate_services(doc.get("services"), where),
        "sweep": None,
        "fault": None,
        "baseline": None,
        "expect": _validate_expect(doc.get("expect"), where),
        "max_events": max_events,
    }

    if sweep is not None:
        normalized["sweep"] = _validate_sweep(sweep, where)
        _check_sweep_constraints(doc, normalized, where)
        # The campaign machinery owns every key sweep mode rejects;
        # drop the defaults those sections just picked up so the
        # normalized document itself re-validates (the canonical
        # round-trip contract).
        normalized["workload"]["params"] = None
        normalized["engine"] = {}
        for section, allowed in SWEEP_ALLOWED.items():
            normalized[section] = {key: normalized[section][key]
                                   for key in allowed}
    elif fault is not None:
        normalized["fault"] = _validate_fault(fault, where)
    elif baseline is not None:
        normalized["baseline"] = _validate_baseline(baseline, where)
        _check_baseline_constraints(doc, normalized, where)
    return normalized


def _validate_sweep(sweep: Any, where: str) -> Dict[str, Any]:
    try:
        sweep = validate_params(_require_mapping(sweep, "sweep"),
                                SWEEP_SPECS, "sweep")
    except RegistryError as error:
        raise SchemaError(f"{where}: {error}") from None
    seeds = sweep["seeds"]
    if isinstance(seeds, list):
        sweep["seeds"] = _int_list(seeds, f"{where}: sweep.seeds")
        if not sweep["seeds"]:
            raise SchemaError(f"{where}: sweep.seeds: must not be "
                              f"empty")
    elif seeds < 1:
        raise SchemaError(f"{where}: sweep.seeds: a seed count must "
                          f"be >= 1")
    if sweep["kinds"] is not None:
        sweep["kinds"] = _name_list(sweep["kinds"], FAULT_REGISTRY,
                                    f"{where}: sweep.kinds")
    return sweep


def _validate_services(services: Any,
                       where: str) -> Optional[Dict[str, Any]]:
    """``services:`` — resilience services to enable, each with its
    knob values validated (and defaulted) against the service
    registry's param specs."""
    if services is None:
        return None
    from ..resilience.registry import SERVICE_REGISTRY

    services = _require_mapping(services, "services")
    out: Dict[str, Any] = {}
    for name, knobs in services.items():
        if name not in SERVICE_REGISTRY:
            raise SchemaError(f"{where}: services: "
                              + unknown_name_message(
                                  "resilience service", name,
                                  SERVICE_REGISTRY.names()))
        try:
            out[name] = validate_params(
                _require_mapping(knobs, f"services.{name}"),
                SERVICE_REGISTRY.metadata(name).params,
                f"services.{name}")
        except RegistryError as error:
            raise SchemaError(f"{where}: {error}") from None
    return out or None


def _validate_baseline(baseline: Any, where: str) -> Dict[str, Any]:
    from ..baselines.designs import DESIGN_REGISTRY

    try:
        baseline = validate_params(
            _require_mapping(baseline, "baseline"),
            BASELINE_SPECS, "baseline")
    except RegistryError as error:
        raise SchemaError(f"{where}: {error}") from None
    baseline["kinds"] = _name_list(baseline["kinds"], FAULT_REGISTRY,
                                   f"{where}: baseline.kinds")
    if baseline["designs"] is not None:
        baseline["designs"] = _name_list(
            baseline["designs"], DESIGN_REGISTRY,
            f"{where}: baseline.designs")
    return baseline


def _check_baseline_constraints(doc: Mapping[str, Any],
                                normalized: Mapping[str, Any],
                                where: str) -> None:
    """Baseline mode owns its workload (the OLTP bank) and its
    machines (one per design x kind cell, built by the shootout
    harness); sections that cannot reach those machines are rejected,
    not ignored."""
    if normalized["expect"] is not None:
        raise SchemaError(
            f"{where}: 'expect:' is an explicit-mode section; a "
            f"baseline shootout is judged on cell completion")
    if normalized["services"] is not None:
        raise SchemaError(
            f"{where}: 'services:' cannot reach the shootout's "
            f"per-cell machines; baseline mode compares recovery "
            f"designs, not resilience services")
    if _require_mapping(doc.get("engine"), "engine"):
        raise SchemaError(
            f"{where}: 'engine:' cannot reach the shootout's per-cell "
            f"machines; engine selection is an explicit-mode section")
    given = _require_mapping(doc.get("workload"), "workload")
    if given:
        raise SchemaError(
            f"{where}: 'workload:' is fixed in baseline mode (the "
            f"shootout always runs the OLTP bank workload)")
    for section, allowed in SWEEP_ALLOWED.items():
        for key in _require_mapping(doc.get(section), section):
            if section == "bus" or key not in allowed:
                raise SchemaError(
                    f"{where}: {section}.{key}: not available in "
                    f"baseline mode (fault plans carry their own bus "
                    f"rates); baseline scenarios may set "
                    + ", ".join(f"machine.{name}"
                                for name in SWEEP_ALLOWED["machine"]))
    # Null the owned sections entirely so the canonical round-trip
    # emits no workload/bus/engine at all (this very check rejects
    # them).
    normalized["workload"] = {"recipe": None, "params": None}
    normalized["engine"] = {}
    normalized["machine"] = {
        key: normalized["machine"][key]
        for key in SWEEP_ALLOWED["machine"]}
    normalized["bus"] = {}


def _check_sweep_constraints(doc: Mapping[str, Any],
                             normalized: Mapping[str, Any],
                             where: str) -> None:
    """Sweep mode delegates wholesale to the campaign machinery; any
    knob the campaign does not take is rejected, not ignored."""
    if normalized["expect"] is not None:
        raise SchemaError(
            f"{where}: 'expect:' is an explicit-mode section; a sweep "
            f"always runs the full invariant battery per seed")
    if normalized["services"] is not None:
        raise SchemaError(
            f"{where}: 'services:' is an explicit-mode section; the "
            f"campaign machinery owns the sweep's machine configs")
    if _require_mapping(doc.get("engine"), "engine"):
        raise SchemaError(
            f"{where}: 'engine:' cannot reach the campaign's per-seed "
            f"machines (the campaign machinery owns their configs); "
            f"engine selection is an explicit-mode section")
    if normalized["workload"]["recipe"] != "generated":
        raise SchemaError(
            f"{where}: workload.recipe: a sweep always uses the "
            f"'generated' workload (per-seed scenarios come from the "
            f"campaign's workload generator), "
            f"got {normalized['workload']['recipe']!r}")
    given = _require_mapping(doc.get("workload"), "workload")
    if given.get("params"):
        raise SchemaError(
            f"{where}: workload.params: a sweep derives workload "
            f"parameters from each seed; params are not accepted")
    for section, allowed in SWEEP_ALLOWED.items():
        for key in _require_mapping(doc.get(section), section):
            if key not in allowed:
                raise SchemaError(
                    f"{where}: {section}.{key}: not available in "
                    f"sweep mode (the campaign machinery owns it); "
                    f"sweep scenarios may set "
                    + ", ".join(f"{section}.{name}"
                                for name in allowed))


def _validate_fault(fault: Any, where: str) -> Dict[str, Any]:
    try:
        fault = validate_params(_require_mapping(fault, "fault"),
                                FAULT_SPECS, "fault")
    except RegistryError as error:
        raise SchemaError(f"{where}: {error}") from None
    kind = fault["kind"]
    if kind not in FAULT_REGISTRY:
        raise SchemaError(f"{where}: fault.kind: "
                          + unknown_name_message(
                              "fault kind", kind,
                              FAULT_REGISTRY.names()))
    try:
        fault["params"] = validate_params(
            fault["params"], FAULT_REGISTRY.metadata(kind).params,
            "fault.params")
    except RegistryError as error:
        raise SchemaError(f"{where}: {error}") from None
    return fault


def _validate_expect(expect: Any,
                     where: str) -> Optional[Dict[str, Any]]:
    if expect is None:
        return None
    try:
        expect = validate_params(_require_mapping(expect, "expect"),
                                 EXPECT_SPECS, "expect")
    except RegistryError as error:
        raise SchemaError(f"{where}: {error}") from None
    if expect["invariants"] is not None:
        expect["invariants"] = _name_list(
            expect["invariants"], CHECK_REGISTRY,
            f"{where}: expect.invariants")
    else:
        expect["invariants"] = list(DEFAULT_CHECKS)
    counters: Dict[str, Dict[str, Optional[int]]] = {}
    for counter, bounds in (expect["counters"] or {}).items():
        try:
            bounds = validate_params(
                _require_mapping(bounds, f"expect.counters.{counter}"),
                COUNTER_BOUND_SPECS, f"expect.counters.{counter}")
        except RegistryError as error:
            raise SchemaError(f"{where}: {error}") from None
        if all(bounds[key] is None for key in ("min", "max", "equals")):
            raise SchemaError(
                f"{where}: expect.counters.{counter}: set at least "
                f"one of min, max, equals")
        if bounds["equals"] is not None and (
                bounds["min"] is not None or bounds["max"] is not None):
            raise SchemaError(
                f"{where}: expect.counters.{counter}: equals excludes "
                f"min/max")
        counters[counter] = bounds
    expect["counters"] = counters
    return expect
