"""Execute compiled scenarios — one file or a whole corpus.

Sweep-mode scenarios delegate to
:meth:`~repro.faults.campaign.CampaignPlan.run`, honoring ``jobs`` and
the reference cache; their serialized report is **exactly**
``CampaignReport.as_dict()``, so a scenario file and the equivalent
Python-built plan emit byte-identical JSON.  Explicit-mode scenarios
build the named workload twice (failure-free reference + faulted run),
install the fault plan, and judge the run against ``expect:``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..core.machine import Machine
from ..faults.campaign import install_plan, trace_digest
from ..faults.injector import FaultInjector
from ..sim.events import SimulationError
from ..workloads.generator import observable
from .checks import DEFAULT_CHECKS, CheckContext, run_checks
from .compile import CompiledScenario, load_scenario
from .registry import RegistryError
from .workloads import WORKLOAD_REGISTRY
from .yamlite import YamlError

SCENARIO_SUFFIXES = (".yaml", ".yml")


@dataclass
class ScenarioOutcome:
    """What one scenario produced."""

    name: str
    source: str
    mode: str          #: "sweep" | "explicit" | "baseline" | "error"
    passed: bool
    violations: List[str] = field(default_factory=list)
    description: str = ""
    #: Sweep mode: the campaign report, verbatim
    #: (``CampaignReport.as_dict()`` — the byte-identity surface).
    report: Optional[Dict[str, Any]] = None
    #: Explicit mode: run facts.
    fault: Optional[str] = None
    survivable: bool = True
    digest: str = ""
    end_time: int = 0
    events: int = 0
    counters: Dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "scenario": self.name,
            "source": self.source,
            "mode": self.mode,
            "passed": self.passed,
            "violations": self.violations,
        }
        if self.mode in ("sweep", "baseline"):
            out["report"] = self.report
        elif self.mode == "explicit":
            out.update({
                "fault": self.fault,
                "survivable": self.survivable,
                "digest": self.digest,
                "end_time": self.end_time,
                "events": self.events,
                "counters": self.counters,
            })
        return out


def run_compiled(compiled: CompiledScenario, jobs: int = 1,
                 cache_dir: Optional[str] = None) -> ScenarioOutcome:
    """Execute one compiled scenario."""
    if compiled.campaign is not None:
        return _run_sweep(compiled, jobs, cache_dir)
    if compiled.mode == "baseline":
        return _run_baseline(compiled)
    return _run_explicit(compiled)


def _run_sweep(compiled: CompiledScenario, jobs: int,
               cache_dir: Optional[str]) -> ScenarioOutcome:
    report = compiled.campaign.run(jobs=jobs, cache_dir=cache_dir)
    violations = []
    failure = report.first_failure()
    if failure is not None:
        violations.append(
            f"campaign: {report.failed}/{len(report.results)} seeds "
            f"failed; first: seed {failure.seed} "
            f"({failure.plan}): {failure.violations[0]}")
    return ScenarioOutcome(
        name=compiled.name, source=compiled.source, mode="sweep",
        passed=failure is None, violations=violations,
        description=compiled.description, report=report.as_dict())


def _run_baseline(compiled: CompiledScenario) -> ScenarioOutcome:
    """Baseline mode: the recovery-design shootout (experiment F5).
    Pass criterion: every cell whose fault kind is graded survivable
    completed (all clients got all their replies)."""
    from ..baselines.designs import DESIGN_ORDER, run_shootout
    from ..faults.kinds import FAULT_REGISTRY
    from .shapes import shape_config

    spec = compiled.baseline
    machine = compiled.doc["machine"]
    clusters = machine["clusters"]
    if clusters is None:
        clusters = shape_config(machine["shape"])["n_clusters"]
    report = run_shootout(
        kinds=spec["kinds"],
        designs=spec["designs"] or list(DESIGN_ORDER),
        n_clusters=clusters, n_clients=spec["clients"],
        txns_per_client=spec["txns_per_client"],
        max_events=compiled.max_events)
    violations = [
        f"cell {cell.design}/{cell.kind}: {cell.replies}/"
        f"{cell.expected_replies} clients completed"
        for cell in report.cells
        if FAULT_REGISTRY.get(cell.kind).survivable
        and not cell.completed]
    return ScenarioOutcome(
        name=compiled.name, source=compiled.source, mode="baseline",
        passed=not violations, violations=violations,
        description=compiled.description, report=report.as_dict())


def _run_explicit(compiled: CompiledScenario) -> ScenarioOutcome:
    build = WORKLOAD_REGISTRY.get(compiled.workload_recipe)
    params = compiled.workload_params
    max_events = compiled.max_events
    expect = compiled.expect
    checks = (expect["invariants"] if expect is not None
              else list(DEFAULT_CHECKS))

    violations: List[str] = []
    expected = None
    if "external_behaviour" in checks:
        reference = Machine(compiled.baseline_config())
        build(reference, params)
        try:
            reference.run_until_idle(max_events=max_events)
        except SimulationError as error:
            violations.append(f"reference run: {error}")
        expected = observable(reference)

    faulted = Machine(compiled.machine_config())
    pids = build(faulted, params)
    injector = FaultInjector(faulted)
    if compiled.fault_plan is not None:
        install_plan(compiled.fault_plan, injector, pids)
    try:
        faulted.run_until_idle(max_events=max_events)
    except SimulationError as error:
        violations.append(f"simulation: {error}")

    context = CheckContext(machine=faulted, expected=expected,
                           survivable=compiled.survivable,
                           injected_crashes=injector.crashes_delivered())
    violations += run_checks(checks, context)

    counters: Dict[str, int] = {}
    if expect is not None:
        violations += _check_counters(expect["counters"], faulted,
                                      counters)

    return ScenarioOutcome(
        name=compiled.name, source=compiled.source, mode="explicit",
        passed=not violations, violations=violations,
        description=compiled.description,
        fault=(compiled.fault_plan.describe()
               if compiled.fault_plan else None),
        survivable=compiled.survivable,
        digest=trace_digest(faulted), end_time=faulted.sim.now,
        events=faulted.sim.events_executed, counters=counters)


def _check_counters(bounds: Dict[str, Dict[str, Optional[int]]],
                    machine: Machine,
                    observed: Dict[str, int]) -> List[str]:
    violations: List[str] = []
    for counter, bound in bounds.items():
        value = machine.metrics.counter(counter)
        observed[counter] = value
        if bound["equals"] is not None and value != bound["equals"]:
            violations.append(f"counter: {counter}={value}, expected "
                              f"exactly {bound['equals']}")
        if bound["min"] is not None and value < bound["min"]:
            violations.append(f"counter: {counter}={value}, expected "
                              f">= {bound['min']}")
        if bound["max"] is not None and value > bound["max"]:
            violations.append(f"counter: {counter}={value}, expected "
                              f"<= {bound['max']}")
    return violations


# ----------------------------------------------------------------------
# corpus execution
# ----------------------------------------------------------------------

def scenario_files(path: str) -> List[str]:
    """Expand a file-or-directory path into scenario files (sorted,
    so corpus order — and therefore report order — is stable)."""
    if os.path.isdir(path):
        found = sorted(
            os.path.join(path, entry)
            for entry in os.listdir(path)
            if entry.endswith(SCENARIO_SUFFIXES))
        if not found:
            raise FileNotFoundError(
                f"{path}: no {' / '.join(SCENARIO_SUFFIXES)} "
                f"scenario files")
        return found
    if not os.path.exists(path):
        raise FileNotFoundError(f"{path}: no such scenario file "
                                f"or directory")
    return [path]


def validate_paths(paths: List[str]) -> List[Tuple[str, Optional[str]]]:
    """Compile every file; ``(path, error-or-None)`` per file."""
    results: List[Tuple[str, Optional[str]]] = []
    for path in paths:
        try:
            load_scenario(path)
            results.append((path, None))
        except (YamlError, RegistryError, OSError) as error:
            results.append((path, str(error)))
    return results


def run_paths(paths: List[str], jobs: int = 1,
              cache_dir: Optional[str] = None) -> List[ScenarioOutcome]:
    """Run every scenario file; schema/parse errors become failed
    outcomes (mode ``"error"``) instead of aborting the corpus."""
    outcomes: List[ScenarioOutcome] = []
    for path in paths:
        try:
            compiled = load_scenario(path)
        except (YamlError, RegistryError, OSError) as error:
            outcomes.append(ScenarioOutcome(
                name=os.path.basename(path), source=path,
                mode="error", passed=False,
                violations=[str(error)]))
            continue
        outcomes.append(run_compiled(compiled, jobs=jobs,
                                     cache_dir=cache_dir))
    return outcomes


def corpus_report(outcomes: List[ScenarioOutcome]) -> Dict[str, Any]:
    """The corpus-level JSON artifact CI uploads."""
    return {
        "scenarios": len(outcomes),
        "passed": sum(1 for item in outcomes if item.passed),
        "failed": sum(1 for item in outcomes if not item.passed),
        "results": [outcome.as_dict() for outcome in outcomes],
    }
