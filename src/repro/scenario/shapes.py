"""Machine-shape presets: named cluster topologies scenarios refer to.

A scenario names a shape (``machine: {shape: quad}``) instead of
re-spelling :class:`~repro.config.MachineConfig` numbers; explicit
``machine:`` keys override the preset field-by-field.  Presets register
like everything else, so ``repro scenario list`` shows them and an
unknown name gets a did-you-mean error.
"""

from __future__ import annotations

from typing import Any, Dict

from .registry import EntryMetadata, Registry

#: name -> MachineConfig keyword overrides.
SHAPE_REGISTRY: Registry[Dict[str, Any]] = Registry("machine shape")


def register_shape(name: str, config: Dict[str, Any],
                   description: str) -> None:
    SHAPE_REGISTRY.register(name, dict(config),
                            EntryMetadata(description=description))


def shape_config(name: str) -> Dict[str, Any]:
    """A fresh copy of the preset's MachineConfig kwargs."""
    return dict(SHAPE_REGISTRY.get(name))


register_shape("small", {"n_clusters": 3},
               "the default test machine: three clusters on the dual "
               "bus (fullbacks possible)")
register_shape("dual", {"n_clusters": 2},
               "the section 7.1 minimum: two clusters "
               "(quarterback/halfback only)")
register_shape("quad", {"n_clusters": 4},
               "four clusters: the bench OLTP shape")
register_shape("wide8", {"n_clusters": 8},
               "eight clusters: room for spread placement and "
               "multi-victim compound faults")
register_shape("paper-max", {"n_clusters": 32},
               "the section 7.1 maximum: thirty-two clusters on one "
               "dual bus")
