"""The registry/factory core of the declarative scenario subsystem.

Everything the scenario DSL can name — workload recipes, fault kinds,
invariant checkers, machine-shape presets — registers here under a
string name with metadata (description, params schema).  Lookups fail
loudly and helpfully: an unknown name raises :class:`UnknownNameError`
carrying a "did you mean ...?" suggestion plus the full list of valid
names, and duplicate registrations raise :class:`DuplicateNameError`
instead of silently shadowing.

The module is deliberately dependency-free (stdlib only, no ``repro``
imports) so any layer — including :mod:`repro.faults`, which sits
*below* the scenario package — can host a registry without import
cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from difflib import get_close_matches
from typing import (Any, Dict, Generic, Iterator, Mapping, Optional,
                    Sequence, Tuple, TypeVar)

Entry = TypeVar("Entry")

#: Sentinel distinguishing "no default" from "default is None".
REQUIRED = object()


class RegistryError(Exception):
    """Base class for registry failures."""


class DuplicateNameError(RegistryError):
    """A name was registered twice in the same registry."""


class UnknownNameError(RegistryError):
    """A lookup named something the registry has never heard of.

    The message carries a closest-match suggestion and the valid names,
    so a CLI or schema error can be shown to the user verbatim.
    """

    def __init__(self, what: str, name: str,
                 known: Sequence[str]) -> None:
        self.what = what
        self.name = name
        self.known = tuple(known)
        self.suggestion = suggest(name, known)
        super().__init__(unknown_name_message(what, name, known))


def suggest(name: str, known: Sequence[str]) -> Optional[str]:
    """The closest registered name, or None when nothing is close."""
    matches = get_close_matches(name, known, n=1, cutoff=0.5)
    return matches[0] if matches else None


def unknown_name_message(what: str, name: str,
                         known: Sequence[str]) -> str:
    """``unknown <what> 'x' (did you mean 'y'?); known: a, b, c``."""
    hint = suggest(name, known)
    middle = f" (did you mean {hint!r}?)" if hint else ""
    return (f"unknown {what} {name!r}{middle}; "
            f"known: {', '.join(known)}")


@dataclass(frozen=True)
class ParamSpec:
    """Schema for one parameter of a registered entry.

    ``type`` is a concrete Python type (or tuple of types); ``default``
    is :data:`REQUIRED` when the caller must supply the value.  A
    ``choices`` tuple restricts the value to an enumerated set, and
    ``nullable`` additionally admits ``None``.
    """

    type: Any
    description: str = ""
    default: Any = REQUIRED
    choices: Optional[Tuple[Any, ...]] = None
    nullable: bool = False

    @property
    def required(self) -> bool:
        return self.default is REQUIRED

    def type_name(self) -> str:
        if isinstance(self.type, tuple):
            return "/".join(t.__name__ for t in self.type)
        return self.type.__name__


def validate_params(given: Optional[Mapping[str, Any]],
                    specs: Mapping[str, ParamSpec],
                    where: str) -> Dict[str, Any]:
    """Validate ``given`` against ``specs``; returns a normalized dict
    with defaults applied.  Raises :class:`RegistryError` on an unknown
    key (with a did-you-mean suggestion), a missing required key, a
    type mismatch, or a value outside an enumerated ``choices`` set.
    ``where`` names the location for error messages (e.g.
    ``"workload.params"``).
    """
    given = dict(given or {})
    known = tuple(specs)
    for key in given:
        if key not in specs:
            raise RegistryError(
                f"{where}: " + unknown_name_message("key", key, known))
    normalized: Dict[str, Any] = {}
    for key, spec in specs.items():
        if key not in given:
            if spec.required:
                raise RegistryError(
                    f"{where}: missing required key {key!r} "
                    f"({spec.type_name()}: {spec.description})")
            normalized[key] = spec.default
            continue
        value = given[key]
        if value is None:
            if not spec.nullable:
                raise RegistryError(
                    f"{where}.{key}: must be {spec.type_name()}, "
                    f"got null")
            normalized[key] = None
            continue
        expected = spec.type
        # bool is an int subclass; never accept True for an int param.
        if isinstance(value, bool) and expected is not bool:
            raise RegistryError(
                f"{where}.{key}: must be {spec.type_name()}, "
                f"got bool {value}")
        if expected is float and isinstance(value, int):
            value = float(value)
        if not isinstance(value, expected):
            raise RegistryError(
                f"{where}.{key}: must be {spec.type_name()}, "
                f"got {type(value).__name__} {value!r}")
        if spec.choices is not None and value not in spec.choices:
            choice_names = tuple(str(choice) for choice in spec.choices)
            hint = suggest(str(value), choice_names)
            middle = f" (did you mean {hint!r}?)" if hint else ""
            raise RegistryError(
                f"{where}.{key}: {value!r} is not one of "
                f"{', '.join(choice_names)}{middle}")
        normalized[key] = value
    return normalized


@dataclass(frozen=True)
class EntryMetadata:
    """What a registered entry publishes about itself: a one-line
    description (docs and ``repro scenario list`` render it) and the
    schema of its parameters."""

    description: str
    params: Mapping[str, ParamSpec] = field(default_factory=dict)


class Registry(Generic[Entry]):
    """An ordered name -> (entry, metadata) table with loud errors.

    ``what`` names the kind of thing registered ("fault kind",
    "workload recipe", ...) and prefixes every error message.
    Registration order is preserved: ``names()`` lists entries in the
    order they registered, which stratification and docs both rely on.
    """

    def __init__(self, what: str) -> None:
        self.what = what
        self._entries: Dict[str, Tuple[Entry, EntryMetadata]] = {}

    def register(self, name: str, entry: Entry,
                 metadata: EntryMetadata) -> Entry:
        """Register ``entry`` under ``name``; returns the entry so the
        call can double as a decorator tail."""
        if name in self._entries:
            raise DuplicateNameError(
                f"{self.what} {name!r} is already registered; "
                f"remove() it first to replace it")
        self._entries[name] = (entry, metadata)
        return entry

    def remove(self, name: str) -> None:
        """Unregister ``name`` (for tests and plugin teardown)."""
        if name not in self._entries:
            raise UnknownNameError(self.what, name, self.names())
        del self._entries[name]

    def get(self, name: str) -> Entry:
        try:
            return self._entries[name][0]
        except KeyError:
            raise UnknownNameError(self.what, name, self.names()) \
                from None

    def metadata(self, name: str) -> EntryMetadata:
        try:
            return self._entries[name][1]
        except KeyError:
            raise UnknownNameError(self.what, name, self.names()) \
                from None

    def names(self) -> Tuple[str, ...]:
        return tuple(self._entries)

    def items(self) -> Iterator[Tuple[str, Entry, EntryMetadata]]:
        for name, (entry, metadata) in self._entries.items():
            yield name, entry, metadata

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def check_names(self, names: Sequence[str]) -> None:
        """Validate a batch of names; raises :class:`UnknownNameError`
        for the first unknown one."""
        for name in names:
            if name not in self._entries:
                raise UnknownNameError(self.what, name, self.names())
