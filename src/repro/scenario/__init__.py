"""Declarative scenarios: a YAML DSL compiled onto the campaign engine.

The subsystem has four layers (see ``docs/scenarios.md``):

* :mod:`repro.scenario.registry` — the generic name -> entry/metadata
  table everything plugs into.  Dependency-free, so lower layers (the
  fault-kind registry lives in :mod:`repro.faults.kinds`) can host
  registries without import cycles.
* :mod:`repro.scenario.yamlite` — a tiny hand-rolled YAML-subset
  parser/serializer (mappings, scalar lists, comments); no third-party
  dependency.
* :mod:`repro.scenario.schema` / :mod:`repro.scenario.compile` — the
  scenario file schema, validated with precise "unknown key, did you
  mean ...?" errors, compiled onto the existing
  :class:`~repro.faults.campaign.CampaignPlan` /
  :class:`~repro.faults.campaign.FaultPlan` machinery.  A
  scenario-compiled campaign produces **byte-identical** reports to the
  equivalent Python-built one.
* :mod:`repro.scenario.runner` — executes one file or a whole corpus
  directory (``repro scenario run examples/scenarios/``), honoring
  ``--jobs`` and the reference cache.

Workload recipes and machine shapes register in
:mod:`repro.scenario.workloads` / :mod:`repro.scenario.shapes`;
invariant checkers in :mod:`repro.scenario.checks`.

Submodules that depend on the simulator are imported lazily (PEP 562)
so ``repro.faults`` can import :mod:`repro.scenario.registry` without
dragging the whole scenario layer — or a cycle — in.
"""

from __future__ import annotations

from .registry import (DuplicateNameError, EntryMetadata, ParamSpec,
                       Registry, RegistryError, UnknownNameError,
                       suggest, unknown_name_message, validate_params)

#: Lazily resolved public names -> defining submodule.
_LAZY = {
    "YamlError": "yamlite",
    "loads": "yamlite",
    "dumps": "yamlite",
    "load_file": "yamlite",
    "SchemaError": "schema",
    "validate_scenario": "schema",
    "CompiledScenario": "compile",
    "compile_scenario": "compile",
    "load_scenario": "compile",
    "WORKLOAD_REGISTRY": "workloads",
    "register_workload": "workloads",
    "SHAPE_REGISTRY": "shapes",
    "register_shape": "shapes",
    "shape_config": "shapes",
    "CHECK_REGISTRY": "checks",
    "CheckContext": "checks",
    "register_check": "checks",
    "ScenarioOutcome": "runner",
    "corpus_report": "runner",
    "run_compiled": "runner",
    "run_paths": "runner",
    "scenario_files": "runner",
    "validate_paths": "runner",
}

__all__ = [
    "DuplicateNameError", "EntryMetadata", "ParamSpec", "Registry",
    "RegistryError", "UnknownNameError", "suggest",
    "unknown_name_message", "validate_params",
] + sorted(_LAZY)


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module
    module = import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value
