"""A tiny hand-rolled YAML-subset parser and serializer.

Scenario files need exactly four things: nested mappings, lists of
scalars, scalars with obvious types, and comments.  This module
implements that subset — nothing else — so the repo stays free of
third-party dependencies while scenario authors still write ordinary
YAML:

.. code-block:: yaml

    scenario: pipeline-time-crash     # comments anywhere
    workload:
      recipe: pipeline
      params:
        stages: 3
        items: 10
    sweep:
      kinds: [time_crash, sync_crash] # inline scalar lists
    tags:
      - smoke                         # block scalar lists
      - crash

Supported:

* mappings nested by indentation (spaces only, any consistent width);
* lists of scalars — block form (``- item``) and inline form
  (``[a, b, c]``);
* scalars: ``null``/``~``, ``true``/``false``, integers (with ``_``
  separators), floats (including scientific notation), single- and
  double-quoted strings, bare strings;
* full-line and trailing ``#`` comments (a ``#`` inside quotes is
  content, not a comment).

Deliberately *not* supported (use the Python API for anything this
exotic): anchors/aliases, multi-document streams, flow mappings,
block scalars (``|``/``>``), tabs in indentation, lists of mappings.
Unsupported constructs fail loudly with a line number, never parse as
something silently different.

Round-trip: :func:`dumps` emits this same subset, and
``loads(dumps(value)) == value`` for any value built from dicts, lists
of scalars, and scalars (the schema round-trip test pins this).
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Optional, Tuple, Union

Scalar = Union[None, bool, int, float, str]


class YamlError(ValueError):
    """A parse error, carrying the offending line number."""

    def __init__(self, message: str, line: Optional[int] = None,
                 source: str = "") -> None:
        where = f"{source or 'input'}" + (f":{line}" if line else "")
        super().__init__(f"{where}: {message}")
        self.line = line


_INT_RE = re.compile(r"^[+-]?[0-9][0-9_]*$")
_FLOAT_RE = re.compile(
    r"^[+-]?(?:[0-9][0-9_]*\.[0-9_]*|\.[0-9]+|[0-9][0-9_]*)"
    r"(?:[eE][+-]?[0-9]+)?$")


def _parse_scalar(text: str, line: int, source: str) -> Scalar:
    text = text.strip()
    if text in ("null", "~", "Null", "NULL"):
        return None
    if text in ("true", "True", "TRUE"):
        return True
    if text in ("false", "False", "FALSE"):
        return False
    if len(text) >= 2 and text[0] == text[-1] and text[0] in "'\"":
        body = text[1:-1]
        if text[0] == '"':
            body = (body.replace("\\\\", "\0")
                        .replace('\\"', '"')
                        .replace("\\n", "\n")
                        .replace("\\t", "\t")
                        .replace("\0", "\\"))
        return body
    if _INT_RE.match(text):
        return int(text.replace("_", ""))
    if _FLOAT_RE.match(text) and any(c in text for c in ".eE"):
        return float(text.replace("_", ""))
    for forbidden in ("{", "}", "&", "*", "|", ">"):
        if text.startswith(forbidden):
            raise YamlError(
                f"unsupported YAML construct {text[:20]!r} (this "
                f"loader covers mappings, scalar lists and scalars "
                f"only)", line, source)
    return text


def _strip_comment(text: str) -> str:
    """Drop a trailing ``#`` comment, honoring quotes."""
    quote: Optional[str] = None
    for index, char in enumerate(text):
        if quote:
            if char == quote:
                quote = None
        elif char in "'\"":
            quote = char
        elif char == "#" and (index == 0 or text[index - 1] in " \t"):
            return text[:index].rstrip()
    return text.rstrip()


def _parse_inline_list(text: str, line: int,
                       source: str) -> List[Scalar]:
    body = text[1:-1].strip()
    if not body:
        return []
    items: List[str] = []
    current = ""
    quote: Optional[str] = None
    for char in body:
        if quote:
            current += char
            if char == quote:
                quote = None
        elif char in "'\"":
            current += char
            quote = char
        elif char == ",":
            items.append(current)
            current = ""
        elif char in "[{":
            raise YamlError("nested inline collections are not "
                            "supported", line, source)
        else:
            current += char
    items.append(current)
    if quote:
        raise YamlError("unterminated quote in inline list", line,
                        source)
    return [_parse_scalar(item, line, source) for item in items]


def _parse_value(text: str, line: int, source: str) -> Any:
    if text.startswith("[") and text.endswith("]"):
        return _parse_inline_list(text, line, source)
    return _parse_scalar(text, line, source)


#: (indent, content, line number) triples of the non-blank lines.
_Line = Tuple[int, str, int]


def _logical_lines(text: str, source: str) -> List[_Line]:
    lines: List[_Line] = []
    for number, raw in enumerate(text.splitlines(), start=1):
        stripped = _strip_comment(raw)
        if not stripped.strip():
            continue
        indent = len(stripped) - len(stripped.lstrip(" "))
        content = stripped.strip()
        if "\t" in raw[:len(raw) - len(raw.lstrip())]:
            raise YamlError("tabs are not allowed in indentation",
                            number, source)
        lines.append((indent, content, number))
    return lines


_KEY_RE = re.compile(r"^(?P<key>[A-Za-z0-9_.\-]+|'[^']*'|\"[^\"]*\")"
                     r"\s*:(?:\s+|$)")


def _split_key(content: str, line: int,
               source: str) -> Optional[Tuple[str, str]]:
    """``key: rest`` -> (key, rest); None when not a mapping line."""
    match = _KEY_RE.match(content)
    if not match:
        return None
    key = match.group("key")
    if key[0] in "'\"":
        key = key[1:-1]
    return key, content[match.end():].strip()


class _Parser:
    def __init__(self, lines: List[_Line], source: str) -> None:
        self.lines = lines
        self.source = source
        self.position = 0

    def peek(self) -> Optional[_Line]:
        if self.position < len(self.lines):
            return self.lines[self.position]
        return None

    def parse_block(self, indent: int) -> Any:
        """Parse the block whose lines are indented exactly ``indent``."""
        entry = self.peek()
        assert entry is not None
        if entry[1].startswith("- ") or entry[1] == "-":
            return self.parse_list(indent)
        return self.parse_mapping(indent)

    def parse_list(self, indent: int) -> List[Scalar]:
        items: List[Scalar] = []
        while True:
            entry = self.peek()
            if entry is None or entry[0] != indent:
                break
            line_indent, content, number = entry
            if not (content.startswith("- ") or content == "-"):
                raise YamlError("expected a '- ' list item here "
                                "(mixing mapping keys and list items "
                                "in one block)", number, self.source)
            body = content[1:].strip()
            if not body:
                raise YamlError("empty list items are not supported",
                                number, self.source)
            if _split_key(body, number, self.source) is not None:
                raise YamlError("lists of mappings are not supported "
                                "by this YAML subset", number,
                                self.source)
            self.position += 1
            items.append(_parse_value(body, number, self.source))
        return items

    def parse_mapping(self, indent: int) -> Dict[str, Any]:
        mapping: Dict[str, Any] = {}
        while True:
            entry = self.peek()
            if entry is None:
                break
            line_indent, content, number = entry
            if line_indent < indent:
                break
            if line_indent > indent:
                raise YamlError(
                    f"unexpected indent (expected {indent} spaces, "
                    f"got {line_indent})", number, self.source)
            split = _split_key(content, number, self.source)
            if split is None:
                raise YamlError(
                    f"expected 'key: value', got {content!r}", number,
                    self.source)
            key, rest = split
            if key in mapping:
                raise YamlError(f"duplicate key {key!r}", number,
                                self.source)
            self.position += 1
            if rest:
                mapping[key] = _parse_value(rest, number, self.source)
                continue
            child = self.peek()
            if child is None or child[0] <= indent:
                mapping[key] = None  # `key:` with nothing nested
                continue
            mapping[key] = self.parse_block(child[0])
        return mapping


def loads(text: str, source: str = "") -> Any:
    """Parse a scenario document; the top level must be a mapping
    (or empty, which parses to ``{}``)."""
    lines = _logical_lines(text, source)
    if not lines:
        return {}
    first_indent = lines[0][0]
    if first_indent != 0:
        raise YamlError("top-level content must start at column 0",
                        lines[0][2], source)
    parser = _Parser(lines, source)
    value = parser.parse_block(0)
    remaining = parser.peek()
    if remaining is not None:
        raise YamlError(f"unexpected content {remaining[1]!r}",
                        remaining[2], source)
    return value


def load_file(path: str) -> Any:
    with open(path) as handle:
        return loads(handle.read(), source=path)


# ----------------------------------------------------------------------
# serialization (the round-trip half)
# ----------------------------------------------------------------------

_BARE_RE = re.compile(r"^[A-Za-z][A-Za-z0-9_.\-]*$")


def _format_scalar(value: Scalar) -> str:
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    if _BARE_RE.match(value) and value not in (
            "null", "true", "false", "Null", "True", "False"):
        return value
    escaped = value.replace("\\", "\\\\").replace('"', '\\"') \
                   .replace("\n", "\\n").replace("\t", "\\t")
    return f'"{escaped}"'


def dumps(value: Any, _indent: int = 0) -> str:
    """Serialize dicts / scalar lists / scalars back into the subset."""
    if not isinstance(value, dict):
        raise YamlError("only mappings can be serialized at the top "
                        "level")
    lines: List[str] = []
    _dump_mapping(value, 0, lines)
    return "\n".join(lines) + "\n"


def _dump_mapping(mapping: Dict[str, Any], indent: int,
                  lines: List[str]) -> None:
    pad = " " * indent
    for key, value in mapping.items():
        if not isinstance(key, str):
            raise YamlError(f"mapping keys must be strings, "
                            f"got {key!r}")
        if isinstance(value, dict):
            if not value:
                raise YamlError(f"empty mappings are not serializable "
                                f"(key {key!r})")
            lines.append(f"{pad}{key}:")
            _dump_mapping(value, indent + 2, lines)
        elif isinstance(value, (list, tuple)):
            items = ", ".join(_format_scalar(item) for item in value)
            lines.append(f"{pad}{key}: [{items}]")
        else:
            lines.append(f"{pad}{key}: {_format_scalar(value)}")
