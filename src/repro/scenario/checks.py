"""The invariant-checker registry: named checks scenarios select.

An explicit-mode scenario lists the invariants it expects to hold
(``expect: invariants: [external_behaviour, runnability]``); each name
resolves here to an adapter over the checkers in
:mod:`repro.faults.invariants`.  Every checker consumes a
:class:`CheckContext` and returns a list of violation strings (empty =
pass), which is the contract third-party checkers plug into as well.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..core.machine import Machine
from ..faults.invariants import (Observable, check_all_runnable,
                                 check_bus_fault_sanity,
                                 check_external_behaviour,
                                 check_metrics_sanity)
from .registry import EntryMetadata, Registry


@dataclass(frozen=True)
class CheckContext:
    """Everything a post-run invariant checker may look at."""

    machine: Machine                 #: the (possibly faulted) run
    expected: Optional[Observable]   #: the failure-free observable
    survivable: bool                 #: grade of guarantee expected
    injected_crashes: int            #: cluster crashes the plan caused


CheckFn = Callable[[CheckContext], List[str]]

CHECK_REGISTRY: Registry[CheckFn] = Registry("invariant check")


def register_check(name: str, check: CheckFn,
                   description: str) -> CheckFn:
    """Register an invariant checker (the plugin entry point)."""
    return CHECK_REGISTRY.register(name, check,
                                   EntryMetadata(description=description))


#: The checks an explicit-mode scenario gets when it names none.
DEFAULT_CHECKS = ("external_behaviour", "runnability", "metrics_sanity")


def run_checks(names, context: CheckContext) -> List[str]:
    """Run the named checks in order; combined violation list."""
    violations: List[str] = []
    for name in names:
        violations += CHECK_REGISTRY.get(name)(context)
    return violations


# ----------------------------------------------------------------------
# built-in checks (adapters over repro.faults.invariants)
# ----------------------------------------------------------------------

def _external_behaviour(context: CheckContext) -> List[str]:
    if context.expected is None:
        return ["external: no failure-free baseline available for "
                "the external_behaviour check"]
    from ..workloads.generator import observable
    return check_external_behaviour(context.expected,
                                    observable(context.machine),
                                    context.survivable)


register_check(
    "external_behaviour", _external_behaviour,
    "terminal output and exit codes equal the failure-free run's "
    "(survivable) or form a duplicate-free subsequence (not)")

register_check(
    "runnability",
    lambda context: check_all_runnable(context.machine,
                                       context.survivable),
    "no process left stuck half-scheduled after the run goes idle")

register_check(
    "metrics_sanity",
    lambda context: check_metrics_sanity(context.machine,
                                         context.injected_crashes),
    "metric counters agree with the trace and the injected faults")

register_check(
    "bus_fault_sanity",
    lambda context: check_bus_fault_sanity(context.machine),
    "retransmission/failover counters close arithmetically against "
    "the judged bus faults")
