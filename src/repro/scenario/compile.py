"""Compile validated scenario documents onto the existing machinery.

A sweep-mode document compiles to a
:class:`~repro.faults.campaign.CampaignPlan` — the same object a
Python caller builds by hand, funneled through the same
:func:`~repro.faults.campaign.run_campaign` call, which is what makes
scenario-compiled campaign reports **byte-identical** to code-built
ones.  An explicit-mode document compiles to machine configs, a
workload recipe and (optionally) one :class:`FaultPlan`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..config import BusFaultConfig, MachineConfig
from ..faults.campaign import (BUS_FAULT_KINDS, MAX_EVENTS,
                               CampaignPlan, FaultPlan)
from ..faults.kinds import FAULT_REGISTRY
from . import yamlite
from .schema import validate_scenario
from .shapes import shape_config

#: machine: keys copied straight onto MachineConfig when non-null.
_MACHINE_PASSTHROUGH = ("sync_reads_threshold", "sync_time_threshold",
                        "poll_interval", "server_sync_requests",
                        "server_inbox_limit", "server_inbox_policy")

#: bus: keys copied straight onto BusFaultConfig when non-null.
_BUS_PASSTHROUGH = ("retry_limit", "backoff_base",
                    "failover_threshold")


@dataclass(frozen=True)
class CompiledScenario:
    """One scenario, validated and bound to concrete run machinery."""

    name: str
    description: str
    source: str
    #: The fully normalized document (defaults applied).
    doc: Dict[str, Any] = field(repr=False)
    #: Sweep mode: the campaign to run.  None in explicit mode.
    campaign: Optional[CampaignPlan] = None
    #: Explicit mode: the fault plan to install.  None for
    #: failure-free (smoke) scenarios and in sweep mode.
    fault_plan: Optional[FaultPlan] = None

    @property
    def mode(self) -> str:
        if self.campaign is not None:
            return "sweep"
        if self.doc["baseline"] is not None:
            return "baseline"
        return "explicit"

    @property
    def baseline(self) -> Optional[Dict[str, Any]]:
        """The normalized ``baseline:`` block (the F5 shootout spec),
        or None outside baseline mode."""
        return self.doc["baseline"]

    @property
    def services(self) -> Dict[str, Any]:
        """The normalized ``services:`` block (resilience services to
        enable on the explicit-mode machines); empty when absent."""
        return dict(self.doc.get("services") or {})

    @property
    def max_events(self) -> int:
        return self.doc["max_events"] or MAX_EVENTS

    @property
    def workload_recipe(self) -> str:
        return self.doc["workload"]["recipe"]

    @property
    def workload_params(self) -> Dict[str, Any]:
        return dict(self.doc["workload"]["params"])

    @property
    def expect(self) -> Optional[Dict[str, Any]]:
        return self.doc["expect"]

    @property
    def survivable(self) -> bool:
        """The grade the behaviour checks hold the run to."""
        expect = self.expect
        if expect is not None and expect["survivable"] is not None:
            return expect["survivable"]
        if self.fault_plan is not None:
            return self.fault_plan.survivable
        return True

    # ------------------------------------------------------------------
    # explicit-mode machine configs
    # ------------------------------------------------------------------

    def machine_config(self) -> MachineConfig:
        """The faulted run's machine (explicit mode)."""
        machine = self.doc["machine"]
        kwargs = shape_config(machine["shape"])
        if machine["clusters"] is not None:
            kwargs["n_clusters"] = machine["clusters"]
        config = MachineConfig(**kwargs)
        config.seed = machine["seed"]
        for key in _MACHINE_PASSTHROUGH:
            if machine[key] is not None:
                setattr(config, key, machine[key])
        config.bus_faults = self._bus_config()
        engine = self.doc.get("engine")
        if engine:
            # Performance-only by contract: every engine combination is
            # pop-order-identical, so this can never change what the
            # scenario observes.
            config.event_queue = engine["queue"]
            config.event_queue_params = dict(engine["queue_params"])
            config.run_jobs = engine["run_jobs"]
        services = self.doc.get("services")
        if services:
            # Enabled resilience services are part of the machine under
            # test (the failure-free reference keeps them too; only bus
            # degradation is stripped there).
            from ..resilience.registry import apply_services
            apply_services(config.resilience, services)
        return config.validate()

    def baseline_config(self) -> MachineConfig:
        """The failure-free reference machine: identical, except the
        bus is perfect (bus degradation counts as part of the fault
        under test, so the reference never sees it)."""
        config = self.machine_config()
        config.bus_faults = BusFaultConfig()
        return config

    def _bus_config(self) -> BusFaultConfig:
        bus = self.doc["bus"]
        config = BusFaultConfig(loss_rate=bus["loss_rate"],
                                garble_rate=bus["garble_rate"],
                                seed=bus["seed"])
        for key in _BUS_PASSTHROUGH:
            if bus[key] is not None:
                setattr(config, key, bus[key])
        plan = self.fault_plan
        if plan is not None and plan.kind in BUS_FAULT_KINDS:
            # A bus fault kind carries its own rates and stream seed;
            # they take precedence over the ambient bus: section.
            config.loss_rate = plan.params.get("loss_rate", 0.0)
            config.garble_rate = plan.params.get("garble_rate", 0.0)
            config.seed = plan.params.get("bus_seed", config.seed)
        return config.validate()

    # ------------------------------------------------------------------
    # round-trip serialization
    # ------------------------------------------------------------------

    def canonical(self) -> Dict[str, Any]:
        """The normalized document with empty sections pruned — the
        round-trip form: ``compile_scenario(canonical())`` yields an
        equal canonical document, and :func:`yamlite.dumps` can emit
        it verbatim."""
        return _prune(self.doc)

    def canonical_yaml(self) -> str:
        return yamlite.dumps(self.canonical())


def _prune(value: Any) -> Any:
    """Drop ``None`` values and empty mappings, recursively; what is
    left re-validates to the same normalized document."""
    if isinstance(value, dict):
        pruned = {key: _prune(item) for key, item in value.items()}
        return {key: item for key, item in pruned.items()
                if item is not None and item != {}}
    if isinstance(value, (list, tuple)):
        return [_prune(item) for item in value]
    return value


def compile_scenario(doc: Any, source: str = "") -> CompiledScenario:
    """Validate ``doc`` and bind it: the one entry point from raw
    parsed YAML to something runnable."""
    normalized = validate_scenario(doc, source)
    name = normalized["scenario"]
    campaign: Optional[CampaignPlan] = None
    fault_plan: Optional[FaultPlan] = None

    sweep = normalized["sweep"]
    if sweep is not None:
        seeds = sweep["seeds"]
        if isinstance(seeds, int):
            base = sweep["base_seed"]
            seeds = list(range(base, base + seeds))
        machine = normalized["machine"]
        clusters = machine["clusters"]
        if clusters is None:
            clusters = shape_config(machine["shape"])["n_clusters"]
        bus = normalized["bus"]
        campaign = CampaignPlan(
            seeds=tuple(seeds), n_clusters=clusters,
            kinds=tuple(sweep["kinds"]) if sweep["kinds"] else None,
            loss_rate=bus["loss_rate"] or None,
            garble_rate=bus["garble_rate"] or None,
            max_events=normalized["max_events"] or MAX_EVENTS)

    fault = normalized["fault"]
    if fault is not None:
        entry = FAULT_REGISTRY.get(fault["kind"])
        survivable = (entry.survivable if fault["survivable"] is None
                      else fault["survivable"])
        fault_plan = FaultPlan(fault["kind"], dict(fault["params"]),
                               survivable)

    return CompiledScenario(name=name,
                            description=normalized["description"],
                            source=source, doc=normalized,
                            campaign=campaign, fault_plan=fault_plan)


def load_scenario(path: str) -> CompiledScenario:
    """Parse, validate and compile one scenario file."""
    return compile_scenario(yamlite.load_file(path), source=path)
