"""The workload-recipe registry: named builders scenarios instantiate.

Each recipe registers a ``build(machine, params) -> pids`` callable
with a params schema.  The scenario compiler validates ``workload:
params:`` against the schema (unknown keys get did-you-mean errors),
and the runner builds the same recipe on the failure-free and faulted
machines so the invariants can compare them.

The ``flood`` recipe is itself written as a plugin — two small
programs defined *here*, registered like any third-party workload
would be — and exists to prove the bounded-inbox backpressure knobs
(``machine: server_inbox_limit/policy``) are reachable from the DSL.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from ..backup.modes import BackupMode
from ..core.machine import Machine
from ..programs.actions import (Compute, Exit, Open, Read, ReadAny,
                                Write)
from ..programs.program import StateProgram
from ..types import Pid
from ..workloads import (MemoryChurnProgram, PingProgram, PongProgram,
                         TtyWriterProgram, build_bank_workload,
                         build_pipeline)
from ..workloads.generator import generate_scenario
from .registry import EntryMetadata, ParamSpec, Registry

BuildFn = Callable[[Machine, Dict[str, Any]], List[Pid]]

WORKLOAD_REGISTRY: Registry[BuildFn] = Registry("workload recipe")


def register_workload(name: str, build: BuildFn,
                      metadata: EntryMetadata) -> BuildFn:
    """Register a workload recipe (the plugin entry point)."""
    return WORKLOAD_REGISTRY.register(name, build, metadata)


_MODES = {"quarterback": BackupMode.QUARTERBACK,
          "halfback": BackupMode.HALFBACK,
          "fullback": BackupMode.FULLBACK}


def _mode(name: Optional[str]) -> Optional[BackupMode]:
    return _MODES[name] if name is not None else None


# ----------------------------------------------------------------------
# built-in recipes
# ----------------------------------------------------------------------

def _build_generated(machine: Machine,
                     params: Dict[str, Any]) -> List[Pid]:
    scenario = generate_scenario(params["seed"],
                                 n_clusters=machine.config.n_clusters,
                                 max_items=params["max_items"])
    return scenario.build(machine)


register_workload(
    "generated", _build_generated,
    EntryMetadata(
        description="the seeded random workload generator behind the "
                    "property tests and campaigns",
        params={
            "seed": ParamSpec(int, "workload generator seed",
                              default=0),
            "max_items": ParamSpec(int, "maximum program mix size",
                                   default=4),
        }))


def _build_pipeline_recipe(machine: Machine,
                           params: Dict[str, Any]) -> List[Pid]:
    return build_pipeline(
        machine, stages=params["stages"], items=params["items"],
        tag=params["tag"], mode=_mode(params["mode"]),
        sync_reads_threshold=params["sync_reads_threshold"])


register_workload(
    "pipeline", _build_pipeline_recipe,
    EntryMetadata(
        description="source -> N relays -> sink, spread round-robin "
                    "across clusters",
        params={
            "stages": ParamSpec(int, "relay stages", default=3),
            "items": ParamSpec(int, "items pushed through", default=10),
            "tag": ParamSpec(str, "terminal tag prefix",
                             default="pipe"),
            "mode": ParamSpec(str, "backup mode for every stage",
                              default=None, nullable=True,
                              choices=tuple(_MODES)),
            "sync_reads_threshold": ParamSpec(
                int, "reads between syncs", default=4),
        }))


def _build_oltp(machine: Machine, params: Dict[str, Any]) -> List[Pid]:
    server, clients, _ = build_bank_workload(
        machine, n_clients=params["n_clients"],
        txns_per_client=params["txns_per_client"],
        accounts=params["accounts"], seed=params["seed"],
        server_mode=_mode(params["server_mode"]),
        client_mode=_mode(params["client_mode"]),
        server_cluster=params["server_cluster"])
    return [server] + list(clients)


register_workload(
    "oltp", _build_oltp,
    EntryMetadata(
        description="the bank workload: one transfer server, N "
                    "clients, conserved-balance audit",
        params={
            "n_clients": ParamSpec(int, "client processes", default=3),
            "txns_per_client": ParamSpec(int,
                                         "transfers per client",
                                         default=8),
            "accounts": ParamSpec(int, "bank accounts", default=16),
            "seed": ParamSpec(int, "transfer-stream seed", default=7),
            "server_mode": ParamSpec(str, "server backup mode",
                                     default=None, nullable=True,
                                     choices=tuple(_MODES)),
            "client_mode": ParamSpec(str, "client backup mode",
                                     default=None, nullable=True,
                                     choices=tuple(_MODES)),
            "server_cluster": ParamSpec(int,
                                        "pin the server here "
                                        "(null: round-robin)",
                                        default=None, nullable=True),
        }))


def _build_memory_churn(machine: Machine,
                        params: Dict[str, Any]) -> List[Pid]:
    return [machine.spawn(
        MemoryChurnProgram(pages=params["pages"],
                           rounds=params["rounds"],
                           compute=params["compute"],
                           total_pages=params["total_pages"]),
        backup_mode=BackupMode.QUARTERBACK)
        for _ in range(params["workers"])]


register_workload(
    "memory_churn", _build_memory_churn,
    EntryMetadata(
        description="page-dirtying compute loops: the sync-traffic "
                    "stress shape",
        params={
            "workers": ParamSpec(int, "churn processes", default=2),
            "pages": ParamSpec(int, "pages dirtied per round",
                               default=4),
            "rounds": ParamSpec(int, "churn rounds", default=30),
            "compute": ParamSpec(int, "compute ticks per round",
                                 default=2_000),
            "total_pages": ParamSpec(int, "data-space size, pages",
                                     default=48),
        }))


def _build_tty(machine: Machine, params: Dict[str, Any]) -> List[Pid]:
    return [machine.spawn(
        TtyWriterProgram(lines=params["lines"],
                         compute=params["compute"],
                         tag=f"w{index}"),
        cluster=index % machine.config.n_clusters,
        sync_reads_threshold=params["sync_reads_threshold"])
        for index in range(params["writers"])]


register_workload(
    "tty", _build_tty,
    EntryMetadata(
        description="terminal writers: the quickstart observable",
        params={
            "writers": ParamSpec(int, "writer processes", default=2),
            "lines": ParamSpec(int, "lines per writer", default=8),
            "compute": ParamSpec(int, "compute ticks per line",
                                 default=1_000),
            "sync_reads_threshold": ParamSpec(
                int, "reads between syncs", default=3),
        }))


def _build_pingpong(machine: Machine,
                    params: Dict[str, Any]) -> List[Pid]:
    pids: List[Pid] = []
    n_clusters = machine.config.n_clusters
    for index in range(params["pairs"]):
        channel = f"chan:pp{index}"
        pids.append(machine.spawn(
            PingProgram(channel=channel, rounds=params["rounds"],
                        compute=params["compute"]),
            cluster=index % n_clusters))
        pids.append(machine.spawn(
            PongProgram(channel=channel, rounds=params["rounds"]),
            cluster=(index + 1) % n_clusters))
    return pids


register_workload(
    "pingpong", _build_pingpong,
    EntryMetadata(
        description="request/response pairs across clusters: the "
                    "round-trip latency shape",
        params={
            "pairs": ParamSpec(int, "ping/pong pairs", default=1),
            "rounds": ParamSpec(int, "round trips per pair",
                                default=6),
            "compute": ParamSpec(int, "compute ticks between sends",
                                 default=500),
        }))


# ----------------------------------------------------------------------
# the flood recipe (the backpressure smoke plugin)
# ----------------------------------------------------------------------

class _FloodProducer(StateProgram):
    """Streams items down one channel with no pacing, so the
    consumer's inbox builds depth."""

    name = "scenario_flood_producer"
    start_state = "open"

    def __init__(self, items: int = 10,
                 channel: str = "chan:scenario_flood") -> None:
        self._items = items
        self._channel = channel

    def declare(self, space) -> None:
        space.declare("i", 1)

    def init(self, mem, regs) -> None:
        super().init(mem, regs)
        mem.set("i", 0)

    def state_open(self, ctx):
        ctx.goto("send")
        return Open(self._channel)

    def state_send(self, ctx):
        if ctx.regs.get("fd") is None:
            ctx.regs["fd"] = ctx.rv
        index = ctx.mem.get("i")
        if index >= self._items:
            return Exit(0)
        ctx.mem.set("i", index + 1)
        ctx.goto("send")
        return Write(ctx.regs["fd"], ("item", index))


class _SlowServer(StateProgram):
    """Consumes the flood with a long service time per item — the
    slow server the producer(s) overrun.  ``items`` is the *total*
    across every channel."""

    name = "scenario_slow_server"
    start_state = "open"

    def __init__(self, items: int = 10, service: int = 3_000,
                 channels=("chan:scenario_flood",)) -> None:
        self._items = items
        self._service = service
        self._channels = tuple(channels)

    def declare(self, space) -> None:
        space.declare("i", 1)

    def init(self, mem, regs) -> None:
        super().init(mem, regs)
        mem.set("i", 0)

    def state_open(self, ctx):
        ctx.regs["opened"] = 0
        ctx.goto("opened")
        return Open(self._channels[0])

    def state_opened(self, ctx):
        ctx.regs[f"fd{ctx.regs['opened']}"] = ctx.rv
        ctx.regs["opened"] += 1
        if ctx.regs["opened"] < len(self._channels):
            ctx.goto("opened")
            return Open(self._channels[ctx.regs["opened"]])
        ctx.goto("read")
        return Compute(10)

    def state_read(self, ctx):
        if ctx.mem.get("i") >= self._items:
            return Exit(0)
        ctx.goto("got")
        if len(self._channels) == 1:
            return Read(ctx.regs["fd0"])
        return ReadAny(fds=())

    def state_got(self, ctx):
        ctx.mem.set("i", ctx.mem.get("i") + 1)
        ctx.goto("read")
        return Compute(self._service)


def _build_flood(machine: Machine, params: Dict[str, Any]) -> List[Pid]:
    n_clusters = machine.config.n_clusters
    producers = params["producers"]
    server_cluster = 1 % n_clusters
    kernel = machine.clusters[server_cluster].kernel
    if producers == 1:
        channels = ["chan:scenario_flood"]
    else:
        channels = [f"chan:scenario_flood{i}" for i in range(producers)]
    # The consumer is registered as a *server* process so the bounded
    # server inbox (machine: server_inbox_limit/policy) applies to it.
    server = kernel.create_process(
        _SlowServer(items=params["items"] * producers,
                    service=params["service"], channels=channels),
        BackupMode.QUARTERBACK, is_server=True)
    pids = [server.pid]
    # One producer per channel, spread over the non-server clusters —
    # with >1 producer the home clusters differ, which is what lets
    # the bulkhead service partition them into separate inbox classes.
    for index, channel in enumerate(channels):
        pids.append(machine.spawn(
            _FloodProducer(items=params["items"], channel=channel),
            cluster=(server_cluster + 1 + index) % n_clusters))
    return pids


register_workload(
    "flood", _build_flood,
    EntryMetadata(
        description="unpaced producer(s) overrunning a slow server: "
                    "the bounded-inbox backpressure smoke",
        params={
            "items": ParamSpec(int, "items flooded per producer",
                               default=10),
            "service": ParamSpec(int, "server ticks per item",
                                 default=3_000),
            "producers": ParamSpec(int, "producer processes, one "
                                        "channel each", default=1),
        }))
