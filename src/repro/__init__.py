"""repro: a reproduction of Borg, Baumbach & Glazer,
"A Message System Supporting Fault Tolerance" (SOSP 1983).

The package simulates the Auragen 4000 / Auros system: three-way atomic
message delivery keeps inactive backup processes recoverable; periodic
synchronization bounds rollforward; crash handling promotes backups with
exactly-once externally visible behaviour.

Quickstart::

    from repro import Machine, MachineConfig, BackupMode
"""

from .backup.modes import BackupMode
from .config import CostModel, MachineConfig, small_machine
from .core.machine import Machine, MachineError

__version__ = "1.0.0"

__all__ = [
    "BackupMode",
    "CostModel",
    "MachineConfig",
    "small_machine",
    "Machine",
    "MachineError",
    "__version__",
]
