"""Public facade for the reproduction."""

from .machine import Machine, MachineError

__all__ = ["Machine", "MachineError"]
