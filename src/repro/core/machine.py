"""The public facade: build and drive a fault-tolerant Auragen machine.

Typical use::

    from repro import Machine, MachineConfig
    from repro.backup.modes import BackupMode

    machine = Machine(MachineConfig(n_clusters=3))
    pid = machine.spawn(MyProgram(), backup_mode=BackupMode.FULLBACK)
    machine.crash_cluster(0, at=500_000)
    machine.run_until_idle()
    print(machine.tty_output())

A Machine owns the simulator, hardware, one kernel per cluster, the four
well-known servers (file, page, tty, process), the failure detector and
the metrics.  Everything is deterministic given (config, the spawn/crash
calls you make, and their order).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..backup.modes import BackupMode
from ..config import MachineConfig, small_machine
from ..hardware.bus import InterclusterBus
from ..hardware.cluster import Cluster
from ..hardware.topology import Topology
from ..kernel.directory import Directory
from ..kernel.kernel import ClusterKernel
from ..kernel.pcb import ProcessControlBlock
from ..messages.message import (Delivery, DeliveryRole, Message,
                                MessageKind)
from ..messages.routing import PeerKind, RoutingEntry
from ..metrics import MetricSet
from ..paging.store import PageStore
from ..fs.shadowfs import ShadowFS
from ..programs.program import Program
from ..recovery.detector import schedule_detection
from ..resilience.layer import install_services
from ..servers import (TtyDevice, make_file_server_harness,
                       make_page_server_harness, make_raw_server_harness,
                       make_tty_server_harness, register_server_actions)
from ..servers.processserver import ProcessServerProgram
from ..sim import Simulator, TraceLog
from ..types import ClusterId, Pid, Ticks


class MachineError(Exception):
    """Raised on invalid facade usage (bad cluster id, double crash)."""


class Machine:
    """A complete simulated Auragen 4000 running Auros."""

    def __init__(self, config: Optional[MachineConfig] = None,
                 topology: Optional[Topology] = None) -> None:
        self.config = (config if config is not None
                       else small_machine()).validate()
        self.metrics = MetricSet(
            keep_series=self.config.metrics_raw_series)
        self.trace = TraceLog(enabled=self.config.trace_enabled)
        if self.config.event_queue != "heap" \
                or self.config.event_queue_params:
            from ..sim.queues import make_queue
            queue = make_queue(self.config.event_queue,
                               self.config.event_queue_params)
            self.sim = Simulator(trace=self.trace, queue=queue)
        else:
            # Keyword kept off the default path: the A/B engine swaps
            # (legacy/P3 vendored simulators) predate the ``queue``
            # parameter.
            self.sim = Simulator(trace=self.trace)
        #: Built lazily on first run when ``config.run_jobs != 1``.
        self._parallel_loop = None
        self.topology = (topology if topology is not None
                         else Topology.default(self.config))
        self.disks = self.topology.build_disks()
        self.bus = InterclusterBus(self.sim, self.config.costs,
                                   self.metrics, self.trace)
        if self.config.bus_faults.enabled:
            # Post-construction install keeps the 4-arg constructor the
            # A/B legacy-engine swap relies on; with rates at zero the
            # bus keeps its fault-free fast path untouched.
            self.bus.configure_faults(self.config.bus_faults)
        self.clusters: List[Cluster] = [
            Cluster(cid, self.config, self.sim, self.bus, self.metrics,
                    self.trace)
            for cid in range(self.config.n_clusters)]
        self.directory = Directory(n_clusters=self.config.n_clusters)
        self.kernels: List[ClusterKernel] = [
            ClusterKernel(cluster, self.config, self.directory, self.sim,
                          self.metrics, self.trace)
            for cluster in self.clusters]
        #: pid -> exit code for every cleanly exited process.
        self.exits: Dict[Pid, int] = {}
        #: pid -> virtual time of the exit (completion-latency metric).
        self.exit_times: Dict[Pid, Ticks] = {}
        for kernel in self.kernels:
            register_server_actions(kernel)
            kernel.on_exit = self._record_exit
            kernel.on_fatal = self._on_fatal_hardware
        self._spawn_cluster_rr = 0
        self._restore_epoch = 0
        self._crashed: set = set()
        self.tty_device = TtyDevice()
        self._tty_input_seq = 0
        # Same post-construction idiom as the bus fault layer: with every
        # service disabled this is None, no hook fires, and the machine's
        # traces stay byte-identical to a build without the layer.
        self.resilience = install_services(self)
        self._boot_servers()

    # ------------------------------------------------------------------
    # boot
    # ------------------------------------------------------------------

    def _boot_servers(self) -> None:
        """Create the well-known servers.  Placement follows the topology:
        peripheral servers sit in the two clusters ported to their device
        (section 7.9)."""
        kernel0, kernel1 = self.kernels[0], self.kernels[1]
        fs_pid = kernel0.alloc_pid()
        page_pid = kernel0.alloc_pid()
        tty_pid = kernel0.alloc_pid()
        proc_pid = kernel0.alloc_pid()
        raw_pid = kernel0.alloc_pid()
        self.directory.register_server("fs", fs_pid, 0, 1)
        self.directory.register_server("page", page_pid, 0, 1)
        self.directory.register_server("tty", tty_pid, 0, 1)
        self.directory.register_server("proc", proc_pid, 0, 1)
        self.directory.register_server("raw", raw_pid, 0, 1)

        page_store = PageStore(self.disks["pagedisk"], cluster_id=0)
        self.page_harness = make_page_server_harness(
            page_store, ports=(0, 1),
            sync_every=self.config.server_sync_requests)
        self.page_harness.install(kernel0, kernel1, page_pid)

        shadowfs = ShadowFS(self.disks["disk0"], cluster_id=0,
                            words_per_block=self.config.words_per_page)
        self.fs_harness = make_file_server_harness(
            shadowfs, ports=(0, 1),
            sync_every=self.config.server_sync_requests)
        self.fs_harness.install(kernel0, kernel1, fs_pid)

        self.tty_harness = make_tty_server_harness(
            self.tty_device, ports=(0, 1),
            sync_every=self.config.server_sync_requests)
        self.tty_harness.install(kernel0, kernel1, tty_pid)
        self._wire_tty_device_channel(tty_pid)

        self.raw_harness = make_raw_server_harness(
            self.disks["rawdisk"], ports=(0, 1),
            sync_every=self.config.server_sync_requests)
        self.raw_harness.install(kernel0, kernel1, raw_pid)

        proc_mode = (BackupMode.FULLBACK if self.config.n_clusters >= 3
                     else BackupMode.HALFBACK)
        kernel0.create_process(
            ProcessServerProgram(), proc_mode, fixed_pid=proc_pid,
            is_server=True, notify_backup=True)

    def _wire_tty_device_channel(self, tty_pid: Pid) -> None:
        """The terminal multiplexor's input channel: one entry per port."""
        kernel0, kernel1 = self.kernels[0], self.kernels[1]
        self._tty_dev_channel = kernel0.alloc_channel_id()
        primary_entry = RoutingEntry(
            channel_id=self._tty_dev_channel, owner_pid=tty_pid,
            is_backup=False, peer_pid=None, peer_cluster=None,
            peer_backup_cluster=None, peer_kind=PeerKind.SERVER)
        kernel0.routing.add(primary_entry)
        pcb = kernel0.pcbs[tty_pid]
        primary_entry.fd = pcb.alloc_fd(self._tty_dev_channel)
        kernel1.routing.add(RoutingEntry(
            channel_id=self._tty_dev_channel, owner_pid=tty_pid,
            is_backup=True, peer_pid=None, peer_cluster=None,
            peer_backup_cluster=None, peer_kind=PeerKind.SERVER))
        self.tty_harness.device_channels.append(self._tty_dev_channel)

    # ------------------------------------------------------------------
    # process management
    # ------------------------------------------------------------------

    def spawn(self, program: Program,
              backup_mode: Optional[BackupMode] = BackupMode.QUARTERBACK,
              cluster: Optional[ClusterId] = None,
              sync_reads_threshold: Optional[int] = None,
              sync_time_threshold: Optional[Ticks] = None,
              checkpoint_every: Optional[int] = None) -> Pid:
        """Create a new head-of-family user process.  Returns its pid.

        ``backup_mode=None`` runs the process *unprotected* (the no-FT
        baseline).  ``checkpoint_every=N`` switches the process to the
        section 2 explicit-checkpointing baseline: a whole-data-space copy
        every N operations instead of incremental syncs.
        """
        if backup_mode is BackupMode.FULLBACK and self.config.n_clusters < 3:
            raise MachineError("fullbacks need at least three clusters "
                               "(section 7.3)")
        if cluster is None:
            cluster = self._spawn_cluster_rr % self.config.n_clusters
            self._spawn_cluster_rr += 1
        if not self.clusters[cluster].alive:
            raise MachineError(f"cluster {cluster} is down")
        if checkpoint_every is not None:
            # Checkpoint mode replaces the incremental sync triggers.
            sync_reads_threshold = 10 ** 9
            sync_time_threshold = 10 ** 15
        pcb = self.kernels[cluster].create_process(
            program, backup_mode,
            sync_reads_threshold=sync_reads_threshold,
            sync_time_threshold=sync_time_threshold,
            notify_backup=backup_mode is not None)
        if checkpoint_every is not None:
            pcb.checkpoint_every = checkpoint_every
        return pcb.pid

    def find_pcb(self, pid: Pid) -> Optional[ProcessControlBlock]:
        """Locate a live process anywhere in the machine."""
        for kernel in self.kernels:
            if kernel.alive and pid in kernel.pcbs:
                return kernel.pcbs[pid]
        return None

    def _record_exit(self, pid: Pid, code: int, cluster: ClusterId) -> None:
        self.exits[pid] = code
        self.exit_times[pid] = self.sim.now

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------

    def parallel_loop(self) -> "object":
        """The intra-run parallel dispatcher for this machine (built on
        first use; see :class:`repro.sim.parallel.ParallelMachineLoop`).
        Only consulted when ``config.run_jobs != 1``."""
        if self._parallel_loop is None:
            from ..sim.parallel import ParallelMachineLoop
            self._parallel_loop = ParallelMachineLoop(
                self, jobs=self.config.run_jobs)
        return self._parallel_loop

    def run(self, until: Optional[Ticks] = None,
            max_events: Optional[int] = None) -> Ticks:
        """Advance the simulation (see :meth:`Simulator.run`)."""
        if self.config.run_jobs != 1:
            return self.parallel_loop().run(until=until,
                                            max_events=max_events)
        return self.sim.run(until=until, max_events=max_events)

    def run_until_idle(self, max_events: int = 10_000_000) -> Ticks:
        """Run until nothing is scheduled (blocked processes may remain)."""
        if self.config.run_jobs != 1:
            return self.parallel_loop().run_until_idle(
                max_events=max_events)
        return self.sim.run_until_idle(max_events=max_events)

    # ------------------------------------------------------------------
    # failure injection and repair
    # ------------------------------------------------------------------

    def crash_cluster(self, cluster_id: ClusterId,
                      at: Optional[Ticks] = None) -> None:
        """Hard-crash one cluster, now or at virtual time ``at``."""
        if not 0 <= cluster_id < self.config.n_clusters:
            raise MachineError(f"no cluster {cluster_id}")

        def do_crash() -> None:
            if cluster_id in self._crashed:
                return
            self._crashed.add(cluster_id)
            self.clusters[cluster_id].crash()
            schedule_detection(self.kernels, cluster_id)
            if self.resilience is not None:
                self.resilience.on_crash(cluster_id)

        if at is None:
            do_crash()
        else:
            self.sim.call_at(at, do_crash, label=f"crash:{cluster_id}")

    def _on_fatal_hardware(self, cluster_id: ClusterId,
                           reason: str) -> None:
        """A kernel hit unrecoverable hardware (e.g. both drives of its
        disk dead): convert it into a clean whole-cluster crash so the
        failure surfaces through the detector path, never as an
        exception escaping the event loop."""
        self.crash_cluster(cluster_id)

    def fail_process(self, pid: Pid, at: Optional[Ticks] = None) -> None:
        """Fail one process without crashing its cluster (the section 10
        individual-failure extension): its backup alone is brought up."""
        from ..recovery.procfail import ProcFailure, fail_process

        def do_fail() -> None:
            for kernel in self.kernels:
                if kernel.alive and pid in kernel.pcbs:
                    fail_process(kernel, pid)
                    return
            raise ProcFailure(f"pid {pid} is not running anywhere")

        if at is None:
            do_fail()
        else:
            self.sim.call_at(at, do_fail, label=f"procfail:{pid}")

    def restore_cluster(self, cluster_id: ClusterId) -> None:
        """Return a crashed cluster to service with a fresh kernel.

        Halfbacks that lost a backup there get a new one via a full sync
        (section 7.3: "new backups created only when the cluster in which
        the original primary ran is returned to service").
        """
        if cluster_id not in self._crashed:
            raise MachineError(f"cluster {cluster_id} is not down")
        self._crashed.discard(cluster_id)
        self._restore_epoch += 1
        cluster = self.clusters[cluster_id]
        cluster.revive()
        fresh = ClusterKernel(cluster, self.config, self.directory,
                              self.sim, self.metrics, self.trace)
        # Restarted kernels allocate from a fresh epoch so ids never
        # collide with survivors of the crashed incarnation.
        epoch_base = self._restore_epoch * 100_000
        fresh._next_pid = epoch_base + 1
        fresh._next_chan = epoch_base + 1
        fresh._next_msg = epoch_base + 1
        fresh.known_dead = set(self._crashed)
        fresh.on_exit = self._record_exit
        fresh.on_fatal = self._on_fatal_hardware
        register_server_actions(fresh)
        if self.resilience is not None:
            self.resilience.attach_kernel(fresh)
        self.kernels[cluster_id] = fresh
        self.directory.mark_restored(cluster_id)
        self.trace.emit(self.sim.now, "cluster.restore",
                        cluster=cluster_id)
        # Peripheral servers whose backup lived in the restored cluster
        # get a fresh active backup there (server halfback semantics,
        # section 7.3).
        for harness in (self.page_harness, self.fs_harness,
                        self.tty_harness, self.raw_harness):
            if harness.backup_cluster is None \
                    and cluster_id in harness.ports \
                    and harness.primary_cluster != cluster_id \
                    and self.clusters[harness.primary_cluster].alive:
                harness.reinstall_backup(
                    fresh, self.kernels[harness.primary_cluster])
        for kernel in self.kernels:
            if not kernel.alive:
                continue
            kernel.known_dead.discard(cluster_id)
            for pcb in kernel.pcbs.values():
                if pcb.lost_backup_in == cluster_id \
                        and pcb.backup_mode is BackupMode.HALFBACK \
                        and not pcb.is_server:
                    pcb.lost_backup_in = None
                    pcb.full_sync_target = cluster_id
                    pcb.sync_forced = True
                    if pcb.state.value.startswith("blocked"):
                        from ..backup.sync import perform_sync
                        perform_sync(kernel, pcb)

    # ------------------------------------------------------------------
    # terminal IO
    # ------------------------------------------------------------------

    def tty_type(self, text: str, at: Optional[Ticks] = None) -> None:
        """Inject one line of terminal input (device-level event)."""
        def deliver() -> None:
            harness = self.tty_harness
            primary = harness.primary_cluster
            self._tty_input_seq += 1
            deliveries = [Delivery(primary, DeliveryRole.PRIMARY_DEST,
                                   harness.pid, self._tty_dev_channel)]
            if harness.backup_cluster is not None:
                deliveries.append(
                    Delivery(harness.backup_cluster,
                             DeliveryRole.DEST_BACKUP, harness.pid,
                             self._tty_dev_channel))
            message = Message(
                msg_id=-self._tty_input_seq, kind=MessageKind.DATA,
                src_pid=None, dst_pid=harness.pid,
                channel_id=self._tty_dev_channel,
                payload=("input", text), size_bytes=len(text) + 8,
                deliveries=tuple(deliveries))
            # Deliver through every live port: if the primary's cluster is
            # down (pre-detection window), the copy saved at the backup's
            # port is what the promoted server will consume.
            for leg in deliveries:
                if self.clusters[leg.cluster_id].alive:
                    self.clusters[leg.cluster_id].receive(message)

        if at is None:
            deliver()
        else:
            self.sim.call_at(at, deliver, label="tty_input")

    def tty_output(self) -> List[str]:
        """Lines printed at the terminal, in device order (the externally
        visible behaviour experiment E8 compares)."""
        return self.tty_device.output_texts()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def live_process_count(self) -> int:
        return sum(len(k.pcbs) for k in self.kernels if k.alive)

    def backup_record_count(self) -> int:
        return sum(len(k.backups) for k in self.kernels if k.alive)

    def describe(self) -> Dict[str, Any]:
        """A snapshot of machine state for reports and debugging."""
        return {
            "now": self.sim.now,
            "clusters": {c.cluster_id: ("up" if c.alive else "DOWN")
                         for c in self.clusters},
            "processes": self.live_process_count(),
            "backups": self.backup_record_count(),
            "exits": dict(self.exits),
            "tty_lines": len(self.tty_device.output),
        }
