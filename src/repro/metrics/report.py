"""Plain-text table rendering for benchmark reports.

The benchmark harness prints the same kind of rows the paper's evaluation
discusses (overhead percentages, per-message costs, recovery latencies).
This module keeps that formatting in one place so every experiment report
looks the same.
"""

from __future__ import annotations

from typing import Any, List, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
                 title: str = "") -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table.

    Numbers are right-aligned, text left-aligned; floats are shown with
    three decimal places.  Returns the table as a single string.
    """
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered_rows.append([_render_cell(cell) for cell in row])
    widths = [len(str(header)) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str], pad: str = " ") -> str:
        parts = []
        for index, cell in enumerate(cells):
            parts.append(cell.rjust(widths[index], pad))
        return "| " + " | ".join(parts) + " |"

    separator = "|-" + "-|-".join("-" * width for width in widths) + "-|"
    out = []
    if title:
        out.append(title)
    out.append(line([str(header) for header in headers]))
    out.append(separator)
    for row in rendered_rows:
        out.append(line(row))
    return "\n".join(out)


def _render_cell(cell: Any) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def format_ratio(numerator: float, denominator: float) -> str:
    """Render a ratio like ``1.73x`` (``inf`` denominator-safe)."""
    if denominator == 0:
        return "n/a"
    return f"{numerator / denominator:.2f}x"


def format_percent(part: float, whole: float) -> str:
    """Render ``part/whole`` as a percentage string."""
    if whole == 0:
        return "n/a"
    return f"{100.0 * part / whole:.1f}%"
