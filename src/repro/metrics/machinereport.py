"""One-call machine report: where did the time and bytes go?

Summarizes a finished run in the terms the paper's section 8 argues in:
work-processor versus executive-processor busy time (and what each spent
it on), bus occupancy by message class, sync/recovery activity.  Used by
examples and handy in a REPL::

    print(machine_report(machine))
"""

from __future__ import annotations

from typing import List, TYPE_CHECKING

from .report import format_table

if TYPE_CHECKING:  # pragma: no cover
    from ..core.machine import Machine


def machine_report(machine: "Machine") -> str:
    """Render a multi-table utilization and activity report."""
    metrics = machine.metrics
    now = max(machine.sim.now, 1)
    sections: List[str] = []

    # -- processors ---------------------------------------------------------
    rows = []
    for cluster in machine.clusters:
        for proc in cluster.work_processors:
            busy = metrics.busy(proc.resource_name)
            breakdown = metrics.busy_breakdown(proc.resource_name)
            user = breakdown.get("user", 0) + breakdown.get("syscall", 0)
            ft = (breakdown.get("sync_stall", 0)
                  + breakdown.get("checkpoint_stall", 0)
                  + breakdown.get("crash_handling", 0))
            rows.append([proc.resource_name, f"{100 * busy / now:.1f}%",
                         user, ft])
        name = cluster.executive.resource_name
        busy = metrics.busy(name)
        breakdown = metrics.busy_breakdown(name)
        backup_work = sum(t for a, t in breakdown.items()
                          if "backup" in a or a.startswith("apply_"))
        rows.append([name, f"{100 * busy / now:.1f}%",
                     busy - backup_work, backup_work])
    sections.append(format_table(
        ["processor", "utilization", "base work (ticks)",
         "FT work (ticks)"],
        rows, title=f"processors over {now} ticks"))

    # -- bus ----------------------------------------------------------------
    bus_rows = [[activity, ticks]
                for activity, ticks in
                sorted(metrics.busy_breakdown("bus").items())]
    bus_rows.append(["(total bytes)", metrics.counter("bus.bytes")])
    bus_rows.append(["(transmissions)",
                     metrics.counter("bus.transmissions")])
    bus_rows.append(["(utilization)",
                     f"{100 * metrics.busy('bus') / now:.1f}%"])
    sections.append(format_table(["bus activity", "value"], bus_rows,
                                 title="intercluster bus"))

    # -- latency and queue-depth percentiles -------------------------------
    lat_rows = []
    for name, hist in sorted(metrics.histograms().items()):
        summary = hist.summary()
        lat_rows.append([name, summary["count"], summary["p50"],
                         summary["p90"], summary["p99"], summary["max"]])
    if lat_rows:
        sections.append(format_table(
            ["series", "samples", "p50", "p90", "p99", "max"], lat_rows,
            title="latency and queue depth (ticks / entries)"))

    # -- fault tolerance activity ----------------------------------------------
    ft_rows = []
    for name in ("sync.performed", "sync.applied", "sync.pages",
                 "checkpoint.performed", "backup.birth_notices",
                 "backup.records_created", "recovery.promotions",
                 "recovery.sends_suppressed", "recovery.crash_handlings",
                 "procfail.promotions", "server.promotions",
                 "paging.faults", "tty.duplicates_dropped"):
        value = metrics.counter(name)
        if value:
            ft_rows.append([name, value])
    if ft_rows:
        sections.append(format_table(["fault-tolerance activity", "count"],
                                     ft_rows, title="FT machinery"))
    return "\n\n".join(sections)
