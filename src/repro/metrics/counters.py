"""Metric collection for simulation runs.

The paper's evaluation (section 8) argues about *where* overhead lands:
bus transmissions per message, executive-processor versus work-processor
time, sync stall on the primary, recovery latency.  :class:`MetricSet`
records exactly those quantities so the benchmark harness can print them.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


@dataclass
class IntervalStats:
    """Summary statistics over recorded integer samples."""

    count: int
    total: int
    minimum: int
    maximum: int

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricSet:
    """Named counters, integer samples, and busy-time accumulators.

    Three kinds of metric cover everything the experiments need:

    * **counters** — monotonically increasing event counts
      (``bus.transmissions``, ``sync.performed``, ...);
    * **samples** — per-event integer measurements aggregated into
      :class:`IntervalStats` (``sync.stall_ticks``, ``recovery.latency``);
    * **busy time** — total ticks a named resource spent occupied, split by
      activity (``executive[c0].deliver_backup``, ``work[c1].user``), the
      paper's work-versus-executive accounting.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, int] = defaultdict(int)
        self._samples: Dict[str, List[int]] = defaultdict(list)
        self._busy: Dict[Tuple[str, str], int] = defaultdict(int)

    # -- counters ---------------------------------------------------------

    def incr(self, name: str, amount: int = 1) -> None:
        """Increase counter ``name`` by ``amount``."""
        self._counters[name] += amount

    def counter(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never incremented)."""
        return self._counters.get(name, 0)

    def counters(self, prefix: str = "") -> Dict[str, int]:
        """All counters whose name starts with ``prefix``."""
        return {name: value for name, value in self._counters.items()
                if name.startswith(prefix)}

    # -- samples ----------------------------------------------------------

    def record(self, name: str, value: int) -> None:
        """Append one sample to series ``name``."""
        self._samples[name].append(value)

    def series(self, name: str) -> List[int]:
        """Raw samples recorded under ``name`` (empty list if none)."""
        return list(self._samples.get(name, []))

    def stats(self, name: str) -> Optional[IntervalStats]:
        """Aggregate statistics for series ``name``, or ``None`` if empty."""
        samples = self._samples.get(name)
        if not samples:
            return None
        return IntervalStats(count=len(samples), total=sum(samples),
                             minimum=min(samples), maximum=max(samples))

    # -- busy time --------------------------------------------------------

    def add_busy(self, resource: str, activity: str, ticks: int) -> None:
        """Account ``ticks`` of ``resource`` time to ``activity``."""
        self._busy[(resource, activity)] += ticks

    def busy(self, resource: str, activity: Optional[str] = None) -> int:
        """Total busy ticks for ``resource`` (optionally one activity)."""
        if activity is not None:
            return self._busy.get((resource, activity), 0)
        return sum(ticks for (res, _), ticks in self._busy.items()
                   if res == resource)

    def busy_breakdown(self, resource: str) -> Dict[str, int]:
        """Mapping activity -> ticks for one resource."""
        return {act: ticks for (res, act), ticks in self._busy.items()
                if res == resource}

    def busy_resources(self) -> List[str]:
        """Sorted list of resource names with any recorded busy time."""
        return sorted({res for (res, _) in self._busy})

    # -- reporting --------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """A plain-dict snapshot (counters, sample stats, busy totals)."""
        return {
            "counters": dict(self._counters),
            "samples": {name: self.stats(name) for name in self._samples},
            "busy": {f"{res}:{act}": ticks
                     for (res, act), ticks in self._busy.items()},
        }
