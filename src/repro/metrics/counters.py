"""Metric collection for simulation runs.

The paper's evaluation (section 8) argues about *where* overhead lands:
bus transmissions per message, executive-processor versus work-processor
time, sync stall on the primary, recovery latency.  :class:`MetricSet`
records exactly those quantities so the benchmark harness can print them.

Sample series are aggregated *streaming*: :meth:`MetricSet.record` folds
each value into a running ``(count, total, min, max)`` so
:meth:`MetricSet.stats` is O(1) and a long campaign run holds four
integers per series instead of an unbounded list.  Raw-series retention
(everything :meth:`MetricSet.series` returns) is controlled by
``keep_series``: on by default so reports and tests can read the exact
sample lists, switched off by the wall-clock benchmark harness where the
per-sample appends and the memory they pin are pure overhead.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .histogram import LogHistogram


class MetricsError(Exception):
    """Raised on invalid metric access (e.g. raw series not retained)."""


@dataclass
class IntervalStats:
    """Summary statistics over recorded integer samples."""

    count: int
    total: int
    minimum: int
    maximum: int

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricSet:
    """Named counters, integer samples, and busy-time accumulators.

    Three kinds of metric cover everything the experiments need:

    * **counters** — monotonically increasing event counts
      (``bus.transmissions``, ``sync.performed``, ...);
    * **samples** — per-event integer measurements aggregated into
      :class:`IntervalStats` (``sync.stall_ticks``, ``recovery.latency``);
    * **busy time** — total ticks a named resource spent occupied, split by
      activity (``executive[c0].deliver_backup``, ``work[c1].user``), the
      paper's work-versus-executive accounting.

    ``keep_series=False`` drops raw sample retention (streaming running
    stats only); :meth:`stats` and :meth:`snapshot` are identical in both
    modes (``tests/test_metrics_streaming.py`` checks this on real
    workloads), only :meth:`series` requires retention.
    """

    def __init__(self, keep_series: bool = True) -> None:
        self._counters: Dict[str, int] = defaultdict(int)
        #: name -> [count, total, minimum, maximum], updated per record().
        self._running: Dict[str, List[int]] = {}
        self._series: Dict[str, List[int]] = defaultdict(list)
        self._keep_series = keep_series
        self._busy: Dict[Tuple[str, str], int] = defaultdict(int)
        #: Bounded-memory log-spaced histograms (latency percentiles);
        #: retained in *both* keep_series modes — bucket counts, not raw
        #: samples, so the memory argument for dropping series does not
        #: apply and percentile output is identical either way.
        self._hists: Dict[str, LogHistogram] = {}

    # -- counters ---------------------------------------------------------

    def incr(self, name: str, amount: int = 1) -> None:
        """Increase counter ``name`` by ``amount``."""
        self._counters[name] += amount

    def counter(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never incremented)."""
        return self._counters.get(name, 0)

    def counters(self, prefix: str = "") -> Dict[str, int]:
        """All counters whose name starts with ``prefix``."""
        return {name: value for name, value in self._counters.items()
                if name.startswith(prefix)}

    # -- samples ----------------------------------------------------------

    def record(self, name: str, value: int) -> None:
        """Fold one sample into series ``name``'s running stats (and the
        retained raw series when ``keep_series`` is on)."""
        running = self._running.get(name)
        if running is None:
            self._running[name] = [1, value, value, value]
        else:
            running[0] += 1
            running[1] += value
            if value < running[2]:
                running[2] = value
            elif value > running[3]:
                running[3] = value
        if self._keep_series:
            self._series[name].append(value)

    def series(self, name: str) -> List[int]:
        """Raw samples recorded under ``name`` (empty list if none).

        Raises :class:`MetricsError` if samples were recorded but raw
        retention is off — the streaming stats are still available via
        :meth:`stats`.
        """
        if not self._keep_series and name in self._running:
            raise MetricsError(
                f"raw series {name!r} not retained (keep_series=False); "
                f"use stats() for the streaming aggregate")
        return list(self._series.get(name, []))

    def stats(self, name: str) -> Optional[IntervalStats]:
        """Aggregate statistics for series ``name``, or ``None`` if empty.

        O(1): read from the running aggregate, never from the raw list.
        """
        running = self._running.get(name)
        if running is None:
            return None
        return IntervalStats(count=running[0], total=running[1],
                             minimum=running[2], maximum=running[3])

    # -- histograms -------------------------------------------------------

    def record_hist(self, name: str, value: int) -> None:
        """Fold one sample into the log-spaced histogram ``name`` (O(1),
        bounded memory; see :class:`~repro.metrics.histogram.LogHistogram`)."""
        hist = self._hists.get(name)
        if hist is None:
            hist = self._hists[name] = LogHistogram()
        hist.record(value)

    def histogram(self, name: str) -> Optional[LogHistogram]:
        """The histogram recorded under ``name``, or ``None`` if empty."""
        return self._hists.get(name)

    def histograms(self, prefix: str = "") -> Dict[str, LogHistogram]:
        """All histograms whose name starts with ``prefix``."""
        return {name: hist for name, hist in self._hists.items()
                if name.startswith(prefix)}

    # -- busy time --------------------------------------------------------

    def add_busy(self, resource: str, activity: str, ticks: int) -> None:
        """Account ``ticks`` of ``resource`` time to ``activity``."""
        self._busy[(resource, activity)] += ticks

    def busy(self, resource: str, activity: Optional[str] = None) -> int:
        """Total busy ticks for ``resource`` (optionally one activity)."""
        if activity is not None:
            return self._busy.get((resource, activity), 0)
        return sum(ticks for (res, _), ticks in self._busy.items()
                   if res == resource)

    def busy_breakdown(self, resource: str) -> Dict[str, int]:
        """Mapping activity -> ticks for one resource."""
        return {act: ticks for (res, act), ticks in self._busy.items()
                if res == resource}

    def busy_resources(self) -> List[str]:
        """Sorted list of resource names with any recorded busy time."""
        return sorted({res for (res, _) in self._busy})

    # -- reporting --------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """A plain-dict snapshot (counters, sample stats, busy totals)."""
        return {
            "counters": dict(self._counters),
            "samples": {name: self.stats(name) for name in self._running},
            "busy": {f"{res}:{act}": ticks
                     for (res, act), ticks in self._busy.items()},
            "histograms": {name: hist.summary()
                           for name, hist in sorted(self._hists.items())},
        }
