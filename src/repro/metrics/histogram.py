"""Streaming log-spaced histograms for latency percentiles.

Production telemetry needs tail latency (p99), not just means — but a
campaign records millions of samples, so retaining raw series is not an
option, and the parallel campaign engine needs per-worker results to
merge into *exactly* the aggregate a serial run would have produced
(the byte-identical report gate).  Both needs point at the same classic
structure (HdrHistogram's log-linear bucketing): fixed log-spaced
integer buckets, O(1) ``record``, and a merge that is plain addition of
bucket counts — exact, associative and commutative, so shard order can
never change the result.

Bucketing: values below ``2**SUB_BITS`` (32) map to themselves, one
bucket per integer (exact).  Above that, each power-of-two octave is
split into ``2**SUB_BITS`` linear sub-buckets, so a bucket spans
``2**shift`` values at worst — a relative width, and therefore a
worst-case percentile error, of ``1/2**SUB_BITS`` (3.125%).  Reported
percentiles use the bucket's *upper* bound (clamped to the observed
maximum): a conservative tail estimate that never understates p99.

All values are non-negative integers (virtual-time ticks).  Recording
is deterministic and so is everything derived, which is what lets
percentile fields live inside reports that must stay byte-identical
across serial, parallel and cached executions.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Sub-buckets per octave as a power of two.  32 sub-buckets bound the
#: relative bucket width (and percentile error) at 1/32 = 3.125%.
SUB_BITS = 5

_SUB_COUNT = 1 << SUB_BITS          # 32
_SUB_MASK = _SUB_COUNT - 1


def bucket_index(value: int) -> int:
    """Map a non-negative integer to its bucket index, O(1).

    Indices are contiguous: ``0..31`` are exact singleton buckets,
    ``32+`` are the log-linear range.
    """
    if value < _SUB_COUNT:
        return value
    shift = value.bit_length() - SUB_BITS - 1
    return ((shift + 1) << SUB_BITS) + (value >> shift) - _SUB_COUNT


def bucket_upper_bound(index: int) -> int:
    """Largest value mapping to ``index`` (the conservative
    representative reported for percentiles)."""
    if index < _SUB_COUNT:
        return index
    shift = (index >> SUB_BITS) - 1
    sub = index & _SUB_MASK
    return ((_SUB_COUNT + sub + 1) << shift) - 1


class LogHistogram:
    """A streaming fixed-bucket histogram over non-negative integers.

    ``record`` is O(1); memory is bounded by the number of distinct
    buckets touched (84 buckets cover values up to ~100 million ticks).
    ``merge`` adds bucket counts — exact, associative, commutative —
    so sharded recording reassembles into the identical aggregate.
    """

    __slots__ = ("_counts", "_count", "_total", "_min", "_max")

    def __init__(self) -> None:
        self._counts: Dict[int, int] = {}
        self._count = 0
        self._total = 0
        self._min: Optional[int] = None
        self._max: Optional[int] = None

    # -- recording ------------------------------------------------------

    def record(self, value: int) -> None:
        """Fold one sample in (negative values clamp to zero).

        :func:`bucket_index` is inlined here — one call per recorded
        sample puts the function-call overhead on the queue-depth and
        latency hot paths, and the two must stay in lockstep (the model
        tests cross-check them).
        """
        if value < 0:
            value = 0
        if value < _SUB_COUNT:
            index = value
        else:
            shift = value.bit_length() - SUB_BITS - 1
            index = ((shift + 1) << SUB_BITS) + (value >> shift) - _SUB_COUNT
        counts = self._counts
        counts[index] = counts.get(index, 0) + 1
        self._count += 1
        self._total += value
        if self._min is None or value < self._min:
            self._min = value
        if self._max is None or value > self._max:
            self._max = value

    def merge(self, other: "LogHistogram") -> "LogHistogram":
        """Fold ``other``'s buckets into this histogram (exact)."""
        for index, count in other._counts.items():
            self._counts[index] = self._counts.get(index, 0) + count
        self._count += other._count
        self._total += other._total
        if other._min is not None and (self._min is None
                                       or other._min < self._min):
            self._min = other._min
        if other._max is not None and (self._max is None
                                       or other._max > self._max):
            self._max = other._max
        return self

    # -- reading --------------------------------------------------------

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> int:
        return self._total

    @property
    def minimum(self) -> Optional[int]:
        return self._min

    @property
    def maximum(self) -> Optional[int]:
        return self._max

    @property
    def mean(self) -> float:
        return self._total / self._count if self._count else 0.0

    def percentile(self, pct: float) -> Optional[int]:
        """Nearest-rank percentile estimate, or ``None`` when empty.

        Returns the upper bound of the bucket holding the rank, clamped
        to the observed maximum — within 3.125% of the exact sample,
        never below it for singleton buckets, never above the max.
        """
        if not self._count:
            return None
        if pct <= 0:
            return self._min
        rank = min(self._count,
                   max(1, -(-int(pct * self._count) // 100)))  # ceil
        seen = 0
        for index in sorted(self._counts):
            seen += self._counts[index]
            if seen >= rank:
                bound = bucket_upper_bound(index)
                return min(bound, self._max) if self._max is not None \
                    else bound
        return self._max  # pragma: no cover - rank <= count always hits

    def summary(self, percentiles: Sequence[int] = (50, 90, 99)
                ) -> Dict[str, object]:
        """The report-ready digest: count, mean, min/max, pNN fields."""
        out: Dict[str, object] = {
            "count": self._count,
            "mean": round(self.mean, 1),
            "min": self._min,
            "max": self._max,
        }
        for pct in percentiles:
            out[f"p{pct}"] = self.percentile(pct)
        return out

    # -- serialization --------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        """JSON-safe form; bucket keys sorted so serialization is
        byte-stable for identical contents."""
        return {
            "count": self._count,
            "total": self._total,
            "min": self._min,
            "max": self._max,
            "buckets": {str(index): self._counts[index]
                        for index in sorted(self._counts)},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "LogHistogram":
        hist = cls()
        hist._count = int(data["count"])
        hist._total = int(data["total"])
        hist._min = None if data["min"] is None else int(data["min"])
        hist._max = None if data["max"] is None else int(data["max"])
        hist._counts = {int(index): int(count)
                        for index, count in data["buckets"].items()}
        return hist

    @classmethod
    def merge_many(cls, hists: Iterable["LogHistogram"]) -> "LogHistogram":
        """Merge any number of histograms into a fresh one."""
        merged = cls()
        for hist in hists:
            merged.merge(hist)
        return merged

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"LogHistogram(count={self._count}, min={self._min}, "
                f"max={self._max}, buckets={len(self._counts)})")


def exact_percentile(samples: List[int], pct: float) -> Optional[int]:
    """Nearest-rank percentile over raw samples — the numpy-free exact
    reference the histogram's model tests compare against."""
    if not samples:
        return None
    ordered = sorted(samples)
    if pct <= 0:
        return ordered[0]
    rank = min(len(ordered), max(1, -(-int(pct * len(ordered)) // 100)))
    return ordered[rank - 1]
