"""Instrumentation: counters, busy-time accounting, report tables."""

from .counters import IntervalStats, MetricSet
from .machinereport import machine_report
from .report import format_percent, format_ratio, format_table

__all__ = [
    "IntervalStats",
    "MetricSet",
    "format_percent",
    "format_ratio",
    "format_table",
    "machine_report",
]
