"""Instrumentation: counters, busy-time accounting, report tables."""

from .counters import IntervalStats, MetricSet, MetricsError
from .histogram import LogHistogram, exact_percentile
from .machinereport import machine_report
from .report import format_percent, format_ratio, format_table

__all__ = [
    "IntervalStats",
    "LogHistogram",
    "MetricSet",
    "MetricsError",
    "exact_percentile",
    "format_percent",
    "format_ratio",
    "format_table",
    "machine_report",
]
