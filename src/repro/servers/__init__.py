"""Operating-system server processes (sections 7.6 and 7.9)."""

from .base import (ApplyServerSync, ChannelOf, FdOfChannel, LookupServer,
                   PeripheralServerHarness, ResourceOp, SendServerSync,
                   ServerError, register_server_actions)
from .fileserver import (FS_CHANNEL_BASE, FileServerProgram,
                         make_file_server_harness)
from .pageserver import PageServerProgram, make_page_server_harness
from .processserver import ProcessServerProgram
from .rawserver import RawServerProgram, make_raw_server_harness
from .ttyserver import TtyDevice, TtyServerProgram, make_tty_server_harness

__all__ = [
    "ApplyServerSync",
    "ChannelOf",
    "FdOfChannel",
    "LookupServer",
    "PeripheralServerHarness",
    "ResourceOp",
    "SendServerSync",
    "ServerError",
    "register_server_actions",
    "FS_CHANNEL_BASE",
    "FileServerProgram",
    "make_file_server_harness",
    "PageServerProgram",
    "make_page_server_harness",
    "ProcessServerProgram",
    "RawServerProgram",
    "make_raw_server_harness",
    "TtyDevice",
    "TtyServerProgram",
    "make_tty_server_harness",
]
