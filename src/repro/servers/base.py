"""Peripheral-server framework: active backups (section 7.9).

Peripheral servers differ from user processes in two ways the paper calls
out: they are memory-resident (no page account to roll forward from) and
they talk to devices directly (driver requests/answers never reach the
backup cluster).  The solution is an **active backup**: a running process
in the device's other ported cluster that

* waits for explicit :class:`~repro.messages.payloads.ServerSync`
  messages from the primary and uses them to update its internal state
  and discard saved client requests already serviced;
* on promotion (crash handling step 5 "backups of peripheral servers are
  signaled to begin recovery") reattaches the device through its own port
  and services the remaining saved requests, with re-sent replies
  suppressed by the ordinary writes-since-sync counts.

This module provides the privileged actions server programs use and the
:class:`PeripheralServerHarness` that wires a primary/backup pair into two
kernels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple, TYPE_CHECKING

from ..backup.modes import BackupMode
from ..kernel.pcb import ProcessControlBlock
from ..messages.message import (Delivery, DeliveryRole, Message, MessageKind,
                                QueuedMessage)
from ..messages.payloads import ServerSync
from ..messages.routing import PeerKind, RoutingEntry
from ..programs.actions import Action
from ..programs.program import Program
from ..types import ChannelId, ClusterId, Fd, Pid, Ticks

if TYPE_CHECKING:  # pragma: no cover
    from ..kernel.kernel import ClusterKernel


# ---------------------------------------------------------------------------
# privileged actions available to server programs
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ChannelOf(Action):
    """Resolve a file descriptor to its (promotion-stable) channel id."""

    fd: Fd


@dataclass(frozen=True)
class FdOfChannel(Action):
    """Resolve a channel id back to the current file descriptor."""

    channel_id: ChannelId


@dataclass(frozen=True)
class LookupServer(Action):
    """Read a well-known server's location from the replicated directory.
    Result: ``(pid, primary_cluster, backup_cluster)``."""

    name: str


@dataclass(frozen=True)
class SendServerSync(Action):
    """Primary -> active backup: ship internal state and per-channel
    serviced counts (7.9).  Result: True."""

    state: Any
    serviced: Tuple[Tuple[ChannelId, int], ...]


@dataclass(frozen=True)
class ApplyServerSync(Action):
    """Active backup: apply a received ServerSync — trim saved request
    queues and zero reply-suppression counts.  (The program updates its
    own memory from ``payload.state`` itself.)  Result: True."""

    payload: ServerSync


@dataclass(frozen=True)
class ResourceOp(Action):
    """Operate on the harness-owned device/resource (shadow fs, page
    store, tty device).  The harness's resource handler interprets ``op``;
    the action result is whatever it returns, and the cost it reports is
    charged to the work processor."""

    op: str
    args: Tuple[Any, ...] = ()


# ---------------------------------------------------------------------------
# the harness
# ---------------------------------------------------------------------------

ResourceHandler = Callable[["PeripheralServerHarness", "ClusterKernel",
                            ProcessControlBlock, str, Tuple[Any, ...]],
                           Tuple[Ticks, Any]]


class ServerError(Exception):
    """Raised on server framework misuse."""


class PeripheralServerHarness:
    """Wires one peripheral server (primary + active backup) into the
    machine.

    ``resource_handler`` implements :class:`ResourceOp` against the
    underlying device; it receives the kernel actually executing, so port
    reattachment after promotion is just "use the current cluster".
    """

    def __init__(self, name: str, program_factory: Callable[[], Program],
                 ports: Tuple[ClusterId, ClusterId],
                 resource_handler: ResourceHandler,
                 sync_every_requests: int = 32) -> None:
        self.name = name
        self.program_factory = program_factory
        self.ports = ports
        self.resource_handler = resource_handler
        self.sync_every_requests = sync_every_requests
        self.pid: Optional[Pid] = None
        self.sync_channel: Optional[ChannelId] = None
        #: Device-input channels (e.g. the terminal multiplexor feed):
        #: wired at both ports at boot and re-wired on backup reinstall.
        self.device_channels: list = []
        self.primary_cluster: ClusterId = ports[0]
        self.backup_cluster: Optional[ClusterId] = ports[1]
        self._kernels: Dict[ClusterId, "ClusterKernel"] = {}

    # -- installation -----------------------------------------------------

    def install(self, kernel_a: "ClusterKernel", kernel_b: "ClusterKernel",
                pid: Pid) -> None:
        """Create the primary (in ``kernel_a``) and active backup (in
        ``kernel_b``), plus the server-sync channel between them."""
        self.pid = pid
        self._kernels = {kernel_a.cluster_id: kernel_a,
                         kernel_b.cluster_id: kernel_b}
        self.sync_channel = kernel_a.alloc_channel_id()
        register_server_actions(kernel_a)
        register_server_actions(kernel_b)
        kernel_a.server_registry[pid] = self
        kernel_b.server_registry[pid] = self

        primary = kernel_a.create_process(
            self.program_factory(), BackupMode.HALFBACK,
            fixed_pid=pid, is_server=True,
            backup_cluster=kernel_b.cluster_id, notify_backup=False,
            sync_reads_threshold=10 ** 9, sync_time_threshold=10 ** 15,
            make_ready=False)
        self._wire_sync_channel(kernel_a, primary, kernel_b.cluster_id)
        primary.regs.update({
            "server_mode": "primary",
            "my_cluster": kernel_a.cluster_id,
            "sync_every": self.sync_every_requests,
        })
        kernel_a.scheduler.make_ready(primary)

        backup = kernel_b.create_process(
            self.program_factory(), BackupMode.HALFBACK,
            fixed_pid=pid, is_server=True, backup_cluster=None,
            notify_backup=False,
            sync_reads_threshold=10 ** 9, sync_time_threshold=10 ** 15,
            make_ready=False)
        self._wire_sync_channel(kernel_b, backup, kernel_a.cluster_id)
        backup.regs.update({
            "server_mode": "backup",
            "my_cluster": kernel_b.cluster_id,
            "sync_every": self.sync_every_requests,
        })
        kernel_b.scheduler.make_ready(backup)

    def _wire_sync_channel(self, kernel: "ClusterKernel",
                           pcb: ProcessControlBlock,
                           peer_cluster: ClusterId) -> None:
        entry = RoutingEntry(
            channel_id=self.sync_channel, owner_pid=self.pid,
            is_backup=False, peer_pid=self.pid, peer_cluster=peer_cluster,
            peer_backup_cluster=None, peer_kind=PeerKind.SERVER)
        kernel.routing.add(entry)
        fd = pcb.alloc_fd(self.sync_channel)
        entry.fd = fd
        pcb.regs["sync_fd"] = fd

    def reinstall_backup(self, restored_kernel: "ClusterKernel",
                         primary_kernel: "ClusterKernel") -> None:
        """Re-create the active backup on a restored cluster (the server
        analogue of halfback re-protection, section 7.3: peripheral
        servers get new backups "only when the cluster in which the
        original primary ran is returned to service").

        The new backup starts from the device's durable state (it reloads
        disk/account state at promotion anyway); explicit server syncs
        resume at the primary's next threshold.  A BACKUP_READY broadcast
        re-attaches DEST_BACKUP legs on every client channel.
        """
        from ..messages.message import Delivery, DeliveryRole, MessageKind
        from ..messages.payloads import BackupReady

        restored = restored_kernel.cluster_id
        if restored not in self.ports or restored == self.primary_cluster:
            raise ServerError(
                f"server {self.name}: cluster {restored} is not the "
                f"device's free port")
        self.backup_cluster = restored
        restored_kernel.server_registry[self.pid] = self
        self._kernels[restored] = restored_kernel

        backup = restored_kernel.create_process(
            self.program_factory(), BackupMode.HALFBACK,
            fixed_pid=self.pid, is_server=True, backup_cluster=None,
            notify_backup=False,
            sync_reads_threshold=10 ** 9, sync_time_threshold=10 ** 15,
            make_ready=False)
        self._wire_sync_channel(restored_kernel, backup,
                                self.primary_cluster)
        backup.regs.update({
            "server_mode": "backup",
            "my_cluster": restored,
            "sync_every": self.sync_every_requests,
        })
        for channel_id in self.device_channels:
            restored_kernel.routing.ensure(RoutingEntry(
                channel_id=channel_id, owner_pid=self.pid, is_backup=True,
                peer_pid=None, peer_cluster=None, peer_backup_cluster=None,
                peer_kind=PeerKind.SERVER, opened_since_sync=False))
        # Transfer the primary's client channels (with their unconsumed
        # queues) so a later promotion can reach every parked requester --
        # the server-side analogue of a halfback's full sync.
        max_seqno = 0
        for entry in primary_kernel.routing.entries_for_pid(self.pid):
            if entry.channel_id == self.sync_channel or entry.is_backup:
                continue
            if restored_kernel.routing.get(entry.channel_id,
                                           self.pid) is not None:
                continue
            copied = RoutingEntry(
                channel_id=entry.channel_id, owner_pid=self.pid,
                is_backup=True, peer_pid=entry.peer_pid,
                peer_cluster=entry.peer_cluster,
                peer_backup_cluster=entry.peer_backup_cluster,
                peer_kind=entry.peer_kind, opened_since_sync=False)
            for queued in entry.queue:
                copied.queue.append(QueuedMessage(
                    message=queued.message,
                    arrival_seqno=queued.arrival_seqno,
                    arrival_time=restored_kernel.sim.now))
                max_seqno = max(max_seqno, queued.arrival_seqno)
            restored_kernel.routing.add(copied)
        if max_seqno:
            restored_kernel.cluster.ensure_seqno_at_least(max_seqno)
        restored_kernel.scheduler.make_ready(backup)

        primary = primary_kernel.pcbs.get(self.pid)
        if primary is not None:
            primary.backup_cluster = restored
            primary.lost_backup_in = None
        sync_entry = primary_kernel.routing.get(self.sync_channel, self.pid)
        if sync_entry is not None:
            sync_entry.peer_cluster = restored
        info = primary_kernel.directory.server(self.name)
        info.backup_cluster = restored
        deliveries = tuple(
            Delivery(cid, DeliveryRole.KERNEL, self.pid)
            for cid in primary_kernel.directory.live_clusters())
        primary_kernel.send_kernel_message(
            MessageKind.BACKUP_READY,
            BackupReady(pid=self.pid, backup_cluster=restored),
            deliveries, size=32)
        # Close the re-protection window now: make the primary ship its
        # current state instead of waiting for its next threshold sync.
        self._inject_request(primary_kernel, ("resync",))
        primary_kernel.metrics.incr("server.backups_reinstalled")

    # -- crash handling hook ------------------------------------------------

    def _inject_request(self, kernel: "ClusterKernel",
                        payload: Tuple[Any, ...]) -> None:
        """Queue a kernel-originated request on the server's sync channel
        at ``kernel`` and wake the server."""
        pcb = kernel.pcbs.get(self.pid)
        if pcb is None:
            return
        sync_entry = kernel.routing.require(self.sync_channel, self.pid)
        message = Message(
            msg_id=kernel.next_msg_id(), kind=MessageKind.DATA,
            src_pid=None, dst_pid=self.pid, channel_id=self.sync_channel,
            payload=payload, size_bytes=16,
            deliveries=(Delivery(kernel.cluster_id,
                                 DeliveryRole.PRIMARY_DEST, self.pid,
                                 self.sync_channel),))
        sync_entry.queue.append(QueuedMessage(
            message=message,
            arrival_seqno=kernel.cluster.next_arrival_seqno(),
            arrival_time=kernel.sim.now))
        kernel.wake_process(pcb)

    def on_cluster_crash(self, kernel: "ClusterKernel",
                         crashed: ClusterId) -> None:
        """Called during crash handling on every cluster holding a piece
        of this server."""
        if crashed == self.primary_cluster \
                and kernel.cluster_id == self.backup_cluster:
            self._promote(kernel)
        elif crashed == self.backup_cluster \
                and kernel.cluster_id == self.primary_cluster:
            self.backup_cluster = None
            pcb = kernel.pcbs.get(self.pid)
            if pcb is not None:
                pcb.backup_cluster = None
                pcb.lost_backup_in = crashed
            kernel.metrics.incr("server.backup_lost")

    def _promote(self, kernel: "ClusterKernel") -> None:
        """Signal the active backup to begin recovery (7.10.1 step 5)."""
        pcb = kernel.pcbs.get(self.pid)
        if pcb is None:
            return
        old_primary = self.primary_cluster
        self.primary_cluster = kernel.cluster_id
        self.backup_cluster = None
        pcb.backup_cluster = None
        pcb.lost_backup_in = old_primary
        # Flip saved entries into live ones, assigning descriptors in
        # deterministic (channel id) order.
        for entry in sorted(kernel.routing.entries_for_pid(self.pid),
                            key=lambda e: e.channel_id):
            if entry.is_backup:
                entry.is_backup = False
                if entry.fd is None:
                    entry.fd = pcb.alloc_fd(entry.channel_id)
        # Deliver the recovery signal on the sync channel so the blocked
        # backup loop wakes into its recovery state.
        self._inject_request(kernel, ("promote",))
        kernel.metrics.incr("server.promotions")
        kernel.trace.emit(kernel.sim.now, "server.promote",
                          server=self.name, cluster=kernel.cluster_id)


# ---------------------------------------------------------------------------
# action handlers
# ---------------------------------------------------------------------------

def register_server_actions(kernel: "ClusterKernel") -> None:
    """Install the privileged-action handlers once per kernel."""
    if ChannelOf in kernel.action_handlers:
        return
    kernel.register_action_handler(ChannelOf, _handle_channel_of)
    kernel.register_action_handler(FdOfChannel, _handle_fd_of)
    kernel.register_action_handler(LookupServer, _handle_lookup)
    kernel.register_action_handler(SendServerSync, _handle_send_sync)
    kernel.register_action_handler(ApplyServerSync, _handle_apply_sync)
    kernel.register_action_handler(ResourceOp, _handle_resource_op)


def _handle_channel_of(kernel: "ClusterKernel", pcb: ProcessControlBlock,
                       action: ChannelOf) -> Tuple[Ticks, Any]:
    return 0, pcb.fds.get(action.fd)


def _handle_fd_of(kernel: "ClusterKernel", pcb: ProcessControlBlock,
                  action: FdOfChannel) -> Tuple[Ticks, Any]:
    for fd, chan in pcb.fds.items():
        if chan == action.channel_id:
            return 0, fd
    return 0, None


def _handle_lookup(kernel: "ClusterKernel", pcb: ProcessControlBlock,
                   action: LookupServer) -> Tuple[Ticks, Any]:
    info = kernel.directory.server(action.name)
    return 0, (info.pid, info.primary_cluster, info.backup_cluster)


def _handle_send_sync(kernel: "ClusterKernel", pcb: ProcessControlBlock,
                      action: SendServerSync) -> Tuple[Ticks, Any]:
    harness = kernel.server_registry.get(pcb.pid)
    if harness is None:
        raise ServerError(f"pid {pcb.pid} is not a peripheral server")
    seq = pcb.regs.get("_server_sync_seq", 0) + 1
    pcb.regs["_server_sync_seq"] = seq
    payload = ServerSync(server_pid=pcb.pid, seq=seq, state=action.state,
                         serviced=tuple(action.serviced))
    entry = kernel.routing.require(harness.sync_channel, pcb.pid)
    if harness.backup_cluster is None:
        kernel.metrics.incr("server.syncs_skipped_no_backup")
        return 0, False
    kernel.send_user_message(pcb, entry, payload, size=128)
    kernel.metrics.incr("server.syncs_sent")
    return 0, True


def _handle_apply_sync(kernel: "ClusterKernel", pcb: ProcessControlBlock,
                       action: ApplyServerSync) -> Tuple[Ticks, Any]:
    payload = action.payload
    trimmed_total = 0
    for channel_id, count in payload.serviced:
        entry = kernel.routing.get(channel_id, pcb.pid)
        if entry is None:
            continue
        trimmed = min(count, len(entry.queue))
        del entry.queue[:trimmed]
        trimmed_total += trimmed
        entry.writes_since_sync = 0
    kernel.metrics.incr("server.syncs_applied")
    kernel.metrics.incr("server.requests_discarded", trimmed_total)
    return 0, trimmed_total


def _handle_resource_op(kernel: "ClusterKernel", pcb: ProcessControlBlock,
                        action: ResourceOp) -> Tuple[Ticks, Any]:
    harness = kernel.server_registry.get(pcb.pid)
    if harness is None:
        raise ServerError(f"pid {pcb.pid} is not a peripheral server")
    return harness.resource_handler(harness, kernel, pcb, action.op,
                                    action.args)
