"""The tty server and terminal device (sections 7.6 and 7.9).

A tty server runs in each cluster having terminals; ours serves the
machine's dual-ported terminal multiplexor.  Clients open ``tty:<n>``
through the file server and then:

* ``("twrite", text, pid, seq)`` — print ``text``.  The ``(pid, seq)`` key
  (a deterministic per-client counter) lets the device controller discard
  duplicate prints when a promoted backup server re-services requests the
  lost primary already completed — the output-commit guard.
* ``("tread", ...)`` — receive the next input line; the request parks in
  the server until input arrives.

The device's output log is the machine's externally visible behaviour:
experiment E8 compares it between failure-free and crashed runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Set, Tuple, TYPE_CHECKING

from ..messages.payloads import ServerSync
from ..programs.actions import Action, Compute, Read, ReadAny, Write
from ..programs.program import StateProgram, StepContext
from ..types import Ticks
from .base import (ApplyServerSync, ChannelOf, FdOfChannel,
                   PeripheralServerHarness, ResourceOp, SendServerSync)

if TYPE_CHECKING:  # pragma: no cover
    from ..kernel.kernel import ClusterKernel
    from ..kernel.pcb import ProcessControlBlock


@dataclass
class TtyDevice:
    """The dual-ported terminal controller.

    ``output`` is the authoritative external record.  ``write`` drops
    duplicates by key — modelling a controller FIFO that acknowledges by
    sequence number, which is what makes recovery exactly-once as far as
    the user at the terminal can tell.
    """

    name: str = "tty0"
    output: List[Tuple[Any, str]] = field(default_factory=list)
    _seen_keys: Set[Any] = field(default_factory=set)
    pending_input: List[str] = field(default_factory=list)

    def write(self, text: str, key: Any) -> bool:
        """Print ``text``; returns False if the key was a duplicate."""
        if key is not None:
            if key in self._seen_keys:
                return False
            self._seen_keys.add(key)
        self.output.append((key, text))
        return True

    def output_texts(self) -> List[str]:
        return [text for _, text in self.output]


class TtyServerProgram(StateProgram):
    """Request loop: writes go to the device, reads pair with input."""

    name = "tty_server"
    start_state = "route"

    def declare(self, space) -> None:
        space.declare("input_buf", 1)    # tuple of pending input lines
        space.declare("pending_reads", 1)  # tuple of channel ids, FIFO
        space.declare("serviced", 1)
        space.declare("since_sync", 1)

    def init(self, mem, regs) -> None:
        super().init(mem, regs)
        mem.set("input_buf", ())
        mem.set("pending_reads", ())
        mem.set("serviced", ())
        mem.set("since_sync", 0)

    # -- routing -----------------------------------------------------------

    def state_route(self, ctx: StepContext) -> Action:
        if ctx.regs.get("server_mode") == "backup":
            ctx.goto("backup_got")
            return Read(fd=ctx.regs["sync_fd"])
        ctx.goto("dispatch")
        return ReadAny(fds=())

    def state_dispatch(self, ctx: StepContext) -> Action:
        fd, payload = ctx.rv
        if payload == ("resync",):
            ctx.goto("sync_sent")
            return SendServerSync(
                state=(ctx.mem.get("input_buf"),
                       ctx.mem.get("pending_reads")),
                serviced=tuple(ctx.mem.get("serviced")))
        ctx.regs["_cur_fd"] = fd
        ctx.regs["_cur_req"] = payload
        if isinstance(payload, tuple) and payload:
            tag = payload[0]
            if tag == "input":
                return self._handle_input(ctx, payload[1])
            if tag == "twrite":
                _, text, pid, seq = payload
                ctx.goto("write_done")
                key = None if pid is None else (pid, seq)
                return ResourceOp(op="write", args=(text, key))
            if tag == "tread":
                return self._handle_read(ctx)
        ctx.goto("count")
        return Compute(5)

    # -- output path ------------------------------------------------------------

    def state_write_done(self, ctx: StepContext) -> Action:
        ctx.goto("count")
        return Write(ctx.regs["_cur_fd"], ("ok",))

    # -- input path ----------------------------------------------------------------

    def _handle_input(self, ctx: StepContext, text: str) -> Action:
        pending = list(ctx.mem.get("pending_reads"))
        if pending:
            channel = pending.pop(0)
            ctx.mem.set("pending_reads", tuple(pending))
            ctx.regs["_reply_text"] = text
            ctx.goto("input_reply_fd")
            return FdOfChannel(channel_id=channel)
        buffered = list(ctx.mem.get("input_buf"))
        buffered.append(text)
        ctx.mem.set("input_buf", tuple(buffered))
        ctx.goto("count")
        return Compute(5)

    def state_input_reply_fd(self, ctx: StepContext) -> Action:
        ctx.goto("count")
        return Write(ctx.rv, ("line", ctx.regs["_reply_text"]))

    def _handle_read(self, ctx: StepContext) -> Action:
        buffered = list(ctx.mem.get("input_buf"))
        if buffered:
            text = buffered.pop(0)
            ctx.mem.set("input_buf", tuple(buffered))
            ctx.goto("count")
            return Write(ctx.regs["_cur_fd"], ("line", text))
        # Park the request by channel id (stable across promotion).
        ctx.goto("read_parked")
        return ChannelOf(fd=ctx.regs["_cur_fd"])

    def state_read_parked(self, ctx: StepContext) -> Action:
        pending = list(ctx.mem.get("pending_reads"))
        pending.append(ctx.rv)
        ctx.mem.set("pending_reads", tuple(pending))
        ctx.goto("count")
        return Compute(5)

    # -- serviced accounting & server sync ---------------------------------------

    def state_count(self, ctx: StepContext) -> Action:
        ctx.goto("count_done")
        return ChannelOf(fd=ctx.regs["_cur_fd"])

    def state_count_done(self, ctx: StepContext) -> Action:
        channel = ctx.rv
        serviced = dict(ctx.mem.get("serviced"))
        if channel is not None:
            serviced[channel] = serviced.get(channel, 0) + 1
        ctx.mem.set("serviced", tuple(sorted(serviced.items())))
        since = ctx.mem.get("since_sync") + 1
        ctx.mem.set("since_sync", since)
        if since >= ctx.regs.get("sync_every", 32):
            state = (ctx.mem.get("input_buf"),
                     ctx.mem.get("pending_reads"))
            ctx.goto("sync_sent")
            return SendServerSync(state=state,
                                  serviced=tuple(sorted(serviced.items())))
        ctx.goto("route")
        return Compute(5)

    def state_sync_sent(self, ctx: StepContext) -> Action:
        ctx.mem.set("serviced", ())
        ctx.mem.set("since_sync", 0)
        ctx.goto("route")
        return Compute(5)

    # -- backup path ------------------------------------------------------------------

    def state_backup_got(self, ctx: StepContext) -> Action:
        payload = ctx.rv
        if isinstance(payload, ServerSync):
            ctx.regs["_sync_payload"] = payload
            ctx.goto("backup_state")
            return ApplyServerSync(payload=payload)
        if payload == ("promote",):
            ctx.regs["server_mode"] = "primary"
            ctx.goto("route")
            return ResourceOp(op="attach")
        ctx.goto("route")
        return Compute(5)

    def state_backup_state(self, ctx: StepContext) -> Action:
        payload: ServerSync = ctx.regs["_sync_payload"]
        if payload.state is not None:
            input_buf, pending_reads = payload.state
            ctx.mem.set("input_buf", input_buf)
            ctx.mem.set("pending_reads", pending_reads)
        ctx.goto("route")
        return Compute(5)


def tty_resource_handler(harness: PeripheralServerHarness,
                         kernel: "ClusterKernel",
                         pcb: "ProcessControlBlock", op: str,
                         args: Tuple[Any, ...]) -> Tuple[Ticks, Any]:
    """ResourceOp implementation over the harness's :class:`TtyDevice`."""
    device: TtyDevice = harness.device  # type: ignore[attr-defined]
    if op == "write":
        text, key = args
        accepted = device.write(text, key)
        if not accepted:
            kernel.metrics.incr("tty.duplicates_dropped")
        else:
            kernel.metrics.incr("tty.lines_printed")
        return 200, accepted
    if op == "attach":
        return 0, True
    raise ValueError(f"tty server: unknown resource op {op!r}")


def make_tty_server_harness(device: TtyDevice, ports: Tuple[int, int],
                            sync_every: int = 32
                            ) -> PeripheralServerHarness:
    harness = PeripheralServerHarness(
        name="tty", program_factory=TtyServerProgram, ports=ports,
        resource_handler=tty_resource_handler,
        sync_every_requests=sync_every)
    harness.device = device  # type: ignore[attr-defined]
    return harness
