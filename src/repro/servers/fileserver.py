"""The file server (sections 7.4.1 and 7.9).

One file server is associated with each file system.  It plays two roles:

* **name service**: ``open`` requests arrive on every process's standing
  file-server channel.  ``file:`` names open a file (the new channel's
  peer is the file server itself), ``tty:`` names hand back a channel to
  the tty server, and ``chan:`` names rendezvous-pair two openers into a
  user-to-user channel — the paper's channel-pairing behaviour;
* **file service**: reads and writes on file channels against the
  shadow-block filesystem.

Active backup per section 7.9: the server syncs by *flushing its cache to
the dual-ported disk* and then sending only its small pending state and
per-channel serviced counts — "we avoid sending a large amount of
information to the backup via the message system".
"""

from __future__ import annotations

from typing import Any, Tuple, TYPE_CHECKING

from ..fs.shadowfs import ShadowFS
from ..messages.payloads import OpenReply, OpenRequest, ServerSync
from ..programs.actions import Action, Compute, Read, ReadAny, Write
from ..programs.program import StateProgram, StepContext
from ..types import Ticks
from .base import (ApplyServerSync, ChannelOf, FdOfChannel, LookupServer,
                   PeripheralServerHarness, ResourceOp, SendServerSync)

if TYPE_CHECKING:  # pragma: no cover
    from ..kernel.kernel import ClusterKernel
    from ..kernel.pcb import ProcessControlBlock

#: File-server-allocated channel ids live far above every kernel
#: allocator's range, so the two id spaces never collide.
FS_CHANNEL_BASE = 1_000_000_000


class FileServerProgram(StateProgram):
    """State machine for the file server's request loop."""

    name = "file_server"
    start_state = "route"

    def declare(self, space) -> None:
        space.declare("chanmap", 1)     # tuple of (channel_id, file name)
        space.declare("pending", 1)     # tuple of (name, OpenRequest)
        space.declare("serviced", 1)    # tuple of (channel_id, count)
        space.declare("since_sync", 1)

    def init(self, mem, regs) -> None:
        super().init(mem, regs)
        mem.set("chanmap", ())
        mem.set("pending", ())
        mem.set("serviced", ())
        mem.set("since_sync", 0)

    # -- routing ---------------------------------------------------------

    def state_route(self, ctx: StepContext) -> Action:
        if ctx.regs.get("server_mode") == "backup":
            ctx.goto("backup_got")
            return Read(fd=ctx.regs["sync_fd"])
        ctx.goto("dispatch")
        return ReadAny(fds=())

    def state_dispatch(self, ctx: StepContext) -> Action:
        fd, payload = ctx.rv
        if payload == ("resync",):
            ctx.goto("flushed")
            return ResourceOp(op="flush")
        ctx.regs["_cur_fd"] = fd
        ctx.regs["_cur_req"] = payload
        if isinstance(payload, OpenRequest):
            return self._dispatch_open(ctx, payload)
        if isinstance(payload, tuple) and payload \
                and payload[0] in ("fwrite", "fread", "fsize"):
            ctx.goto("file_op_chan")
            return ChannelOf(fd=fd)
        # Unknown request: ignore it (still counted as serviced).
        ctx.goto("count")
        return Compute(10)

    # -- open handling --------------------------------------------------------

    def _dispatch_open(self, ctx: StepContext,
                       request: OpenRequest) -> Action:
        name = request.name
        if name.startswith("file:"):
            ctx.goto("open_file_created")
            return ResourceOp(op="create", args=(name[5:],))
        if name.startswith("tty:"):
            ctx.goto("open_server_lookup")
            return LookupServer(name="tty")
        if name.startswith("raw:"):
            ctx.goto("open_server_lookup")
            return LookupServer(name="raw")
        if name.startswith("chan:"):
            return self._dispatch_pair(ctx, request)
        ctx.goto("open_error")
        return Compute(10)

    def state_open_error(self, ctx: StepContext) -> Action:
        request: OpenRequest = ctx.regs["_cur_req"]
        ctx.goto("count")
        return Write(ctx.regs["_cur_fd"],
                     OpenReply(name=request.name, channel_id=-1,
                               peer_pid=-1, peer_cluster=-1,
                               peer_backup_cluster=None,
                               peer_is_server=False,
                               error=f"cannot open {request.name!r}"))

    def state_open_file_created(self, ctx: StepContext) -> Action:
        ctx.goto("open_self_lookup")
        return LookupServer(name="fs")

    def state_open_self_lookup(self, ctx: StepContext) -> Action:
        request: OpenRequest = ctx.regs["_cur_req"]
        pid, primary, backup = ctx.rv
        channel_id = self._alloc_channel(request)
        chanmap = dict(ctx.mem.get("chanmap"))
        chanmap[channel_id] = request.name[5:]
        ctx.mem.set("chanmap", tuple(sorted(chanmap.items())))
        ctx.goto("count")
        return Write(ctx.regs["_cur_fd"],
                     OpenReply(name=request.name, channel_id=channel_id,
                               peer_pid=pid, peer_cluster=primary,
                               peer_backup_cluster=backup,
                               peer_is_server=True))

    def state_open_server_lookup(self, ctx: StepContext) -> Action:
        request: OpenRequest = ctx.regs["_cur_req"]
        pid, primary, backup = ctx.rv
        channel_id = self._alloc_channel(request)
        ctx.goto("count")
        return Write(ctx.regs["_cur_fd"],
                     OpenReply(name=request.name, channel_id=channel_id,
                               peer_pid=pid, peer_cluster=primary,
                               peer_backup_cluster=backup,
                               peer_is_server=True))

    def _dispatch_pair(self, ctx: StepContext,
                       request: OpenRequest) -> Action:
        pending = dict(ctx.mem.get("pending"))
        name = request.name
        first = pending.pop(name, None)
        if first is None:
            pending[name] = request
            ctx.mem.set("pending", tuple(sorted(pending.items(),
                                                key=lambda kv: kv[0])))
            # The opener stays blocked until a partner arrives (the read
            # of the open reply is synchronous); nothing to send yet, but
            # the request still counts as serviced so the backup discards
            # it — the pairing state itself rides the server sync.
            ctx.goto("count")
            return Compute(10)
        ctx.mem.set("pending", tuple(sorted(pending.items(),
                                            key=lambda kv: kv[0])))
        channel_id = self._alloc_channel(first)
        ctx.regs["_pair_first"] = first
        ctx.regs["_pair_chan"] = channel_id
        ctx.goto("pair_first_fd")
        return FdOfChannel(channel_id=first.reply_channel)

    def state_pair_first_fd(self, ctx: StepContext) -> Action:
        first: OpenRequest = ctx.regs["_pair_first"]
        second: OpenRequest = ctx.regs["_cur_req"]
        channel_id = ctx.regs["_pair_chan"]
        first_fd = ctx.rv
        ctx.regs["_pair_first_fd"] = first_fd
        ctx.goto("pair_second_reply")
        # Reply to the first opener, naming the second as its peer.
        return Write(first_fd,
                     OpenReply(name=first.name, channel_id=channel_id,
                               peer_pid=second.opener_pid,
                               peer_cluster=second.opener_cluster,
                               peer_backup_cluster=
                               second.opener_backup_cluster,
                               peer_is_server=False,
                               peer_fullback=second.opener_fullback))

    def state_pair_second_reply(self, ctx: StepContext) -> Action:
        first: OpenRequest = ctx.regs["_pair_first"]
        second: OpenRequest = ctx.regs["_cur_req"]
        channel_id = ctx.regs["_pair_chan"]
        ctx.goto("count")
        return Write(ctx.regs["_cur_fd"],
                     OpenReply(name=second.name, channel_id=channel_id,
                               peer_pid=first.opener_pid,
                               peer_cluster=first.opener_cluster,
                               peer_backup_cluster=
                               first.opener_backup_cluster,
                               peer_is_server=False,
                               peer_fullback=first.opener_fullback))

    @staticmethod
    def _alloc_channel(request) -> int:
        """Channel id as a pure function of the opener's identity and its
        per-process open counter — identical no matter which incarnation
        of the file server services (or re-services) the request, and
        collision-free for processes opening < 256 channels."""
        return (FS_CHANNEL_BASE + request.opener_pid * 256
                + request.opener_seq % 256)

    # -- file operations --------------------------------------------------------

    def state_file_op_chan(self, ctx: StepContext) -> Action:
        channel_id = ctx.rv
        chanmap = dict(ctx.mem.get("chanmap"))
        name = chanmap.get(channel_id)
        request = ctx.regs["_cur_req"]
        if name is None:
            ctx.goto("count")
            return Write(ctx.regs["_cur_fd"], ("error", "not a file channel"))
        op = request[0]
        ctx.goto("file_op_done")
        if op == "fwrite":
            _, offset, words = request
            return ResourceOp(op="write", args=(name, offset, tuple(words)))
        if op == "fread":
            _, offset, count = request
            return ResourceOp(op="read", args=(name, offset, count))
        return ResourceOp(op="size", args=(name,))

    def state_file_op_done(self, ctx: StepContext) -> Action:
        request = ctx.regs["_cur_req"]
        ctx.goto("count")
        if request[0] == "fwrite":
            return Write(ctx.regs["_cur_fd"], ("ok",))
        if request[0] == "fread":
            return Write(ctx.regs["_cur_fd"], ("data", ctx.rv))
        return Write(ctx.regs["_cur_fd"], ("size", ctx.rv))

    # -- serviced accounting & server sync -----------------------------------

    def state_count(self, ctx: StepContext) -> Action:
        ctx.goto("count_done")
        return ChannelOf(fd=ctx.regs["_cur_fd"])

    def state_count_done(self, ctx: StepContext) -> Action:
        channel = ctx.rv
        serviced = dict(ctx.mem.get("serviced"))
        if channel is not None:
            serviced[channel] = serviced.get(channel, 0) + 1
        ctx.mem.set("serviced", tuple(sorted(serviced.items())))
        since = ctx.mem.get("since_sync") + 1
        ctx.mem.set("since_sync", since)
        if since >= ctx.regs.get("sync_every", 32):
            ctx.goto("flushed")
            return ResourceOp(op="flush")
        ctx.goto("route")
        return Compute(5)

    def state_flushed(self, ctx: StepContext) -> Action:
        """Sync rides the flush (7.9): disk now holds the cache, so the
        message carries only the small pending state plus counts."""
        state = (ctx.mem.get("chanmap"), ctx.mem.get("pending"))
        ctx.goto("sync_sent")
        return SendServerSync(state=state,
                              serviced=ctx.mem.get("serviced"))

    def state_sync_sent(self, ctx: StepContext) -> Action:
        ctx.mem.set("serviced", ())
        ctx.mem.set("since_sync", 0)
        ctx.goto("route")
        return Compute(5)

    # -- backup path --------------------------------------------------------------

    def state_backup_got(self, ctx: StepContext) -> Action:
        payload = ctx.rv
        if isinstance(payload, ServerSync):
            ctx.regs["_sync_payload"] = payload
            ctx.goto("backup_state")
            return ApplyServerSync(payload=payload)
        if payload == ("promote",):
            ctx.regs["server_mode"] = "primary"
            ctx.goto("route")
            return ResourceOp(op="reload")
        ctx.goto("route")
        return Compute(5)

    def state_backup_state(self, ctx: StepContext) -> Action:
        payload: ServerSync = ctx.regs["_sync_payload"]
        if payload.state is not None:
            chanmap, pending = payload.state
            ctx.mem.set("chanmap", chanmap)
            ctx.mem.set("pending", pending)
        ctx.goto("route")
        return Compute(5)


def fs_resource_handler(harness: PeripheralServerHarness,
                        kernel: "ClusterKernel",
                        pcb: "ProcessControlBlock", op: str,
                        args: Tuple[Any, ...]) -> Tuple[Ticks, Any]:
    """ResourceOp implementation over the harness's :class:`ShadowFS`."""
    shadowfs: ShadowFS = harness.shadowfs  # type: ignore[attr-defined]
    if op == "create":
        (name,) = args
        shadowfs.create(name)
        return 0, True
    if op == "write":
        name, offset, words = args
        cost = shadowfs.write(name, offset, words)
        return cost, True
    if op == "read":
        name, offset, count = args
        data, cost = shadowfs.read(name, offset, count)
        return cost, data
    if op == "size":
        (name,) = args
        return 0, shadowfs.size(name)
    if op == "flush":
        disk_cost = shadowfs.flush()
        # Flush transfers run on the peripheral processor (7.1); the
        # server issues them and continues.
        kernel.metrics.add_busy(f"disk[fs.c{kernel.cluster_id}]", "flush",
                                disk_cost)
        return kernel.config.costs.disk_issue, True
    if op == "reload":
        shadowfs.reattach(kernel.cluster_id)
        return shadowfs.reload(), True
    raise ValueError(f"file server: unknown resource op {op!r}")


def make_file_server_harness(shadowfs: ShadowFS, ports: Tuple[int, int],
                             sync_every: int = 32
                             ) -> PeripheralServerHarness:
    """Build the file-server harness around an existing shadow fs."""
    harness = PeripheralServerHarness(
        name="fs", program_factory=FileServerProgram, ports=ports,
        resource_handler=fs_resource_handler,
        sync_every_requests=sync_every)
    harness.shadowfs = shadowfs  # type: ignore[attr-defined]
    return harness
