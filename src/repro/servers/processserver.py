"""The process server (sections 7.5.1 and 7.6).

A *system* server: it is backed up passively, exactly like a user process
— sync messages, saved queues, rollforward — which makes it the in-tree
demonstration that server processes "are backed up, communicate via
message, and execute in the same way as ordinary user processes".

Services:

* ``("time",)`` — the UNIX ``time`` call, moved out of the local kernel so
  a backup sees the same answer its primary did.  The server reads its
  local clock through the section 10 nondeterministic-event log, so its
  *own* recovery replays identical values (experiment E10).
* ``("ping",)`` — liveness probe used by examples and tests.
* ``("register", pid, cluster)`` / ``("whereis", pid)`` — the process
  location registry the paper gives this server.
"""

from __future__ import annotations

from ..programs.actions import Action, Compute, ReadAny, ReadClock, Write
from ..programs.program import StateProgram, StepContext


class ProcessServerProgram(StateProgram):
    """Request loop of the process server."""

    name = "process_server"
    start_state = "route"

    def declare(self, space) -> None:
        space.declare("registry", 1)   # tuple of (pid, cluster)
        space.declare("served", 1)

    def init(self, mem, regs) -> None:
        super().init(mem, regs)
        mem.set("registry", ())
        mem.set("served", 0)

    def state_route(self, ctx: StepContext) -> Action:
        ctx.goto("dispatch")
        return ReadAny(fds=())

    def state_dispatch(self, ctx: StepContext) -> Action:
        fd, payload = ctx.rv
        ctx.regs["_cur_fd"] = fd
        ctx.mem.set("served", ctx.mem.get("served") + 1)
        if payload == ("time",):
            ctx.goto("time_read")
            return ReadClock()
        if isinstance(payload, tuple) and payload:
            if payload[0] == "ping":
                ctx.goto("route")
                return Write(fd, ("pong",))
            if payload[0] == "register" and len(payload) == 3:
                registry = dict(ctx.mem.get("registry"))
                registry[payload[1]] = payload[2]
                ctx.mem.set("registry", tuple(sorted(registry.items())))
                ctx.goto("route")
                return Compute(20)
            if payload[0] == "whereis" and len(payload) == 2:
                registry = dict(ctx.mem.get("registry"))
                ctx.goto("route")
                return Write(fd, ("at", registry.get(payload[1])))
        ctx.goto("route")
        return Compute(5)

    def state_time_read(self, ctx: StepContext) -> Action:
        ctx.goto("route")
        return Write(ctx.regs["_cur_fd"], ctx.rv)
