"""The page server (sections 7.6 and 7.9).

A peripheral server associated with the paging disk.  It keeps one page
account for each primary process and one for its backup; a process's sync
makes the backup account identical to the primary's, and after a crash the
promoted process demand-pages from the (promoted) backup account.

The server itself is backed up actively: page traffic addressed to it is
saved at its backup's cluster, periodic server syncs let the backup
discard serviced traffic, and on promotion the backup reattaches the
dual-ported paging disk through its own port and replays the unserviced
tail (every page-store operation is an idempotent redo).
"""

from __future__ import annotations

from typing import Any, Tuple, TYPE_CHECKING

from ..messages.message import Delivery, DeliveryRole, MessageKind
from ..messages.payloads import (PageAccountOp, PageIn, PageOut, PageReply,
                                 ServerSync, SyncPayload)
from ..paging.store import PageStore
from ..programs.actions import Action, Compute, Read, ReadAny
from ..programs.program import StateProgram, StepContext
from ..types import Ticks
from .base import (ApplyServerSync, ChannelOf, PeripheralServerHarness,
                   ResourceOp, SendServerSync)

if TYPE_CHECKING:  # pragma: no cover
    from ..kernel.kernel import ClusterKernel
    from ..kernel.pcb import ProcessControlBlock


class PageServerProgram(StateProgram):
    """State machine: the primary services page traffic; the backup waits
    for server syncs until promoted.

    Program state: per-channel serviced counts and a requests-since-sync
    counter, kept in memory; the control state lives in the ``pc``
    register like any :class:`StateProgram`.
    """

    name = "page_server"
    start_state = "route"

    def declare(self, space) -> None:
        space.declare("serviced", 1)    # tuple of (channel_id, count)
        space.declare("since_sync", 1)  # requests since last server sync

    def init(self, mem, regs) -> None:
        super().init(mem, regs)
        mem.set("serviced", ())
        mem.set("since_sync", 0)

    # -- routing -------------------------------------------------------------

    def state_route(self, ctx: StepContext) -> Action:
        if ctx.regs.get("server_mode") == "backup":
            ctx.goto("backup_got")
            return Read(fd=ctx.regs["sync_fd"])
        ctx.goto("dispatch")
        return ReadAny(fds=())

    # -- primary path -----------------------------------------------------------

    def state_dispatch(self, ctx: StepContext) -> Action:
        fd, payload = ctx.rv
        if payload == ("resync",):
            ctx.goto("sync_sent")
            return SendServerSync(
                state=None,
                serviced=tuple(ctx.mem.get("serviced")))
        ctx.regs["_cur_fd"] = fd
        ctx.goto("count")
        if isinstance(payload, PageOut):
            return ResourceOp(op="page_out",
                              args=(payload.pid, payload.page_no,
                                    payload.data))
        if isinstance(payload, PageIn):
            return ResourceOp(op="fetch_and_reply",
                              args=(payload.pid, payload.page_no,
                                    payload.from_backup,
                                    payload.reply_cluster))
        if isinstance(payload, SyncPayload):
            return ResourceOp(op="sync", args=(payload.pid,))
        if isinstance(payload, PageAccountOp):
            return ResourceOp(op=payload.op, args=(payload.pid,))
        return Compute(5)  # unknown traffic: ignore (still counted)

    def state_count(self, ctx: StepContext) -> Action:
        ctx.goto("count_done")
        return ChannelOf(fd=ctx.regs["_cur_fd"])

    def state_count_done(self, ctx: StepContext) -> Action:
        channel = ctx.rv
        serviced = dict(ctx.mem.get("serviced"))
        if channel is not None:
            serviced[channel] = serviced.get(channel, 0) + 1
        ctx.mem.set("serviced", tuple(sorted(serviced.items())))
        since = ctx.mem.get("since_sync") + 1
        ctx.mem.set("since_sync", since)
        if since >= ctx.regs.get("sync_every", 32):
            ctx.goto("sync_sent")
            return SendServerSync(state=None,
                                  serviced=tuple(sorted(serviced.items())))
        ctx.goto("route")
        return Compute(5)

    def state_sync_sent(self, ctx: StepContext) -> Action:
        ctx.mem.set("serviced", ())
        ctx.mem.set("since_sync", 0)
        ctx.goto("route")
        return Compute(5)

    # -- backup path ----------------------------------------------------------

    def state_backup_got(self, ctx: StepContext) -> Action:
        payload = ctx.rv
        if isinstance(payload, ServerSync):
            ctx.regs["_sync_payload"] = payload
            ctx.goto("backup_applied")
            return ApplyServerSync(payload=payload)
        if payload == ("promote",):
            ctx.regs["server_mode"] = "primary"
            ctx.goto("route")
            return ResourceOp(op="reattach")
        ctx.goto("route")
        return Compute(5)

    def state_backup_applied(self, ctx: StepContext) -> Action:
        ctx.goto("route")
        return Compute(5)


def page_resource_handler(harness: PeripheralServerHarness,
                          kernel: "ClusterKernel",
                          pcb: "ProcessControlBlock", op: str,
                          args: Tuple[Any, ...]) -> Tuple[Ticks, Any]:
    """ResourceOp implementation over the harness's :class:`PageStore`."""
    store: PageStore = harness.store  # type: ignore[attr-defined]
    if op == "reattach":
        store.reattach(kernel.cluster_id)
        return 0, True
    if op == "page_out":
        pid, page_no, data = args
        disk_cost = store.page_out(pid, page_no, data)
        # The transfer itself runs on the peripheral processor; the server
        # only issues it (section 7.1's processor split).
        kernel.metrics.add_busy(f"disk[page.c{kernel.cluster_id}]",
                                "page_out", disk_cost)
        return kernel.config.costs.disk_issue, True
    if op == "fetch_and_reply":
        pid, page_no, from_backup, reply_cluster = args
        data, cost = store.fetch(pid, page_no, from_backup=from_backup)
        kernel.send_kernel_message(
            MessageKind.DATA,
            PageReply(pid=pid, page_no=page_no, data=data),
            (Delivery(reply_cluster, DeliveryRole.PRIMARY_DEST, pid, None),),
            size=kernel.config.page_size if data else 32)
        return cost, True
    if op == "sync":
        (pid,) = args
        return store.sync(pid), True
    if op == "promote":
        (pid,) = args
        if store.has_accounts(pid):
            store.promote(pid)
        return 0, True
    if op == "drop":
        (pid,) = args
        store.drop_accounts(pid)
        return 0, True
    raise ValueError(f"page server: unknown resource op {op!r}")


def make_page_server_harness(store: PageStore,
                             ports: Tuple[int, int],
                             sync_every: int = 32
                             ) -> PeripheralServerHarness:
    """Build the page-server harness around an existing store."""
    harness = PeripheralServerHarness(
        name="page", program_factory=PageServerProgram, ports=ports,
        resource_handler=page_resource_handler,
        sync_every_requests=sync_every)
    harness.store = store  # type: ignore[attr-defined]
    return harness
