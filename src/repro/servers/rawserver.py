"""The raw disk server (section 7.6).

"A raw server is associated with each disk to handle requests for direct
access rather than via a file system."  Clients open ``raw:0`` through the
file server and issue block-level reads and writes; the server performs
them against its dual-ported mirrored disk.

Like the other peripheral servers it runs with an active backup: client
requests are saved at the backup's cluster, periodic server syncs carry
only serviced counts (the data is already on the dual-ported disk), and a
promoted backup reattaches through its own port and re-services the
unserviced tail — block writes are idempotent redo operations.
"""

from __future__ import annotations

from typing import Any, Tuple, TYPE_CHECKING

from ..hardware.disk import MirroredDisk
from ..messages.payloads import ServerSync
from ..programs.actions import Action, Compute, Read, ReadAny, Write
from ..programs.program import StateProgram, StepContext
from ..types import Ticks
from .base import (ApplyServerSync, ChannelOf, PeripheralServerHarness,
                   ResourceOp, SendServerSync)

if TYPE_CHECKING:  # pragma: no cover
    from ..kernel.kernel import ClusterKernel
    from ..kernel.pcb import ProcessControlBlock


class RawServerProgram(StateProgram):
    """Request loop for direct block access.

    Protocol (on a channel opened as ``raw:<n>``):
    ``("rwrite", block_no, words)`` -> ``("ok",)``
    ``("rread", block_no)``         -> ``("block", words-or-None)``
    """

    name = "raw_server"
    start_state = "route"

    def declare(self, space) -> None:
        space.declare("serviced", 1)
        space.declare("since_sync", 1)

    def init(self, mem, regs) -> None:
        super().init(mem, regs)
        mem.set("serviced", ())
        mem.set("since_sync", 0)

    def state_route(self, ctx: StepContext) -> Action:
        if ctx.regs.get("server_mode") == "backup":
            ctx.goto("backup_got")
            return Read(fd=ctx.regs["sync_fd"])
        ctx.goto("dispatch")
        return ReadAny(fds=())

    def state_dispatch(self, ctx: StepContext) -> Action:
        fd, payload = ctx.rv
        if payload == ("resync",):
            ctx.goto("sync_sent")
            return SendServerSync(
                state=None,
                serviced=tuple(ctx.mem.get("serviced")))
        ctx.regs["_cur_fd"] = fd
        if isinstance(payload, tuple) and payload:
            if payload[0] == "rwrite" and len(payload) == 3:
                _, block_no, words = payload
                ctx.goto("write_done")
                return ResourceOp(op="write",
                                  args=(block_no, tuple(words)))
            if payload[0] == "rread" and len(payload) == 2:
                ctx.goto("read_done")
                return ResourceOp(op="read", args=(payload[1],))
        ctx.goto("count")
        return Compute(5)

    def state_write_done(self, ctx: StepContext) -> Action:
        ctx.goto("count")
        return Write(ctx.regs["_cur_fd"], ("ok",))

    def state_read_done(self, ctx: StepContext) -> Action:
        ctx.goto("count")
        return Write(ctx.regs["_cur_fd"], ("block", ctx.rv))

    def state_count(self, ctx: StepContext) -> Action:
        ctx.goto("count_done")
        return ChannelOf(fd=ctx.regs["_cur_fd"])

    def state_count_done(self, ctx: StepContext) -> Action:
        channel = ctx.rv
        serviced = dict(ctx.mem.get("serviced"))
        if channel is not None:
            serviced[channel] = serviced.get(channel, 0) + 1
        ctx.mem.set("serviced", tuple(sorted(serviced.items())))
        since = ctx.mem.get("since_sync") + 1
        ctx.mem.set("since_sync", since)
        if since >= ctx.regs.get("sync_every", 32):
            ctx.goto("sync_sent")
            return SendServerSync(state=None,
                                  serviced=tuple(sorted(serviced.items())))
        ctx.goto("route")
        return Compute(5)

    def state_sync_sent(self, ctx: StepContext) -> Action:
        ctx.mem.set("serviced", ())
        ctx.mem.set("since_sync", 0)
        ctx.goto("route")
        return Compute(5)

    def state_backup_got(self, ctx: StepContext) -> Action:
        payload = ctx.rv
        if isinstance(payload, ServerSync):
            ctx.goto("backup_applied")
            return ApplyServerSync(payload=payload)
        if payload == ("promote",):
            ctx.regs["server_mode"] = "primary"
            ctx.goto("route")
            return ResourceOp(op="attach")
        ctx.goto("route")
        return Compute(5)

    def state_backup_applied(self, ctx: StepContext) -> Action:
        ctx.goto("route")
        return Compute(5)


def raw_resource_handler(harness: PeripheralServerHarness,
                         kernel: "ClusterKernel",
                         pcb: "ProcessControlBlock", op: str,
                         args: Tuple[Any, ...]) -> Tuple[Ticks, Any]:
    disk: MirroredDisk = harness.disk  # type: ignore[attr-defined]
    if op == "write":
        block_no, words = args
        disk_cost = disk.write(kernel.cluster_id, block_no, words)
        kernel.metrics.add_busy(f"disk[raw.c{kernel.cluster_id}]", "write",
                                disk_cost)
        return kernel.config.costs.disk_issue, True
    if op == "read":
        (block_no,) = args
        data, cost = disk.read(kernel.cluster_id, block_no)
        return cost, data
    if op == "attach":
        return 0, True
    raise ValueError(f"raw server: unknown resource op {op!r}")


def make_raw_server_harness(disk: MirroredDisk, ports: Tuple[int, int],
                            sync_every: int = 32
                            ) -> PeripheralServerHarness:
    harness = PeripheralServerHarness(
        name="raw", program_factory=RawServerProgram, ports=ports,
        resource_handler=raw_resource_handler,
        sync_every_requests=sync_every)
    harness.disk = disk  # type: ignore[attr-defined]
    return harness
