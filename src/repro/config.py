"""Machine and cost-model configuration.

All costs are integer ticks (microseconds).  The defaults are scaled to a
1983-vintage M68000-class machine so the benchmark *shapes* are meaningful:
a syscall costs a few hundred microseconds, the intercluster bus moves about
a megabyte per second, a 1 KiB page takes ~1 ms to ship.  Absolute numbers
are not calibrated against real Auragen hardware (the paper reports none);
experiments compare configurations against each other.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .types import Ticks


class ConfigError(Exception):
    """Raised when a configuration violates a machine constraint."""


@dataclass
class CostModel:
    """Per-operation virtual-time costs (ticks = microseconds)."""

    #: Fixed bus arbitration + header latency per transmission.
    bus_latency: Ticks = 50
    #: Transfer time per byte on the intercluster bus (~1 MB/s).
    bus_ticks_per_byte: int = 1
    #: Executive-processor time to dispatch one outgoing message.
    exec_dispatch: Ticks = 30
    #: Executive-processor time to perform one delivery leg (enqueue on a
    #: routing entry / bump a count / hand to kernel).
    exec_delivery: Ticks = 40
    #: Executive-processor time to apply a sync message to a backup.
    exec_sync_apply: Ticks = 120
    #: Executive-processor time to create a backup PCB or routing entry.
    exec_backup_maintenance: Ticks = 80
    #: Work-processor time consumed by syscall entry/exit.
    syscall_overhead: Ticks = 150
    #: Work-processor time to place one dirty page on the outgoing queue
    #: during sync (the only part of sync that stalls the primary, 8.3).
    sync_page_enqueue: Ticks = 60
    #: Work-processor time to build and enqueue the sync message itself.
    sync_message_build: Ticks = 100
    #: Context switch cost on a work processor.
    context_switch: Ticks = 80
    #: Disk access: per-block fixed cost (seek+rotate) and per-byte cost.
    #: Charged to the requester only where it genuinely blocks (reads);
    #: writes are issued to the peripheral processor and overlap.
    disk_block_access: Ticks = 3_000
    disk_ticks_per_byte: int = 1
    #: Work-processor time for a server to *issue* an overlapped disk
    #: write (the peripheral processor performs the transfer).
    disk_issue: Ticks = 150
    #: Scheduling quantum on a work processor.
    quantum: Ticks = 10_000
    #: Baseline checkpointing (section 2): work-processor time to copy one
    #: page of the data space into the checkpoint message.  Deliberately
    #: dearer than ``sync_page_enqueue`` — the copy happens synchronously
    #: on the work processor instead of being handed to the executive.
    checkpoint_page_copy: Ticks = 400


@dataclass
class BusFaultConfig:
    """Transient-fault model for the dual intercluster bus.

    All rates are per physical transmission attempt and are judged by a
    deterministic counter-mode hash stream (no runtime RNG), so two runs
    with the same seed see byte-identical fault schedules.  With both
    rates at zero the fault layer is never installed and the bus takes
    the original single-perfect-channel fast path.
    """

    #: Probability an attempt is lost on the wire (split deterministically
    #: between payload loss and lost acknowledgement; an ack loss delivers
    #: but forces a retransmission, exercising duplicate suppression).
    loss_rate: float = 0.0
    #: Probability an attempt arrives corrupted; the receiver's checksum
    #: rejects the whole transmission (all-or-none is trivially kept).
    garble_rate: float = 0.0
    #: Attempts allowed on one bus before the sender declares it suspect
    #: and fails over (if the alternate bus is still alive).
    retry_limit: int = 4
    #: Base retransmission backoff in ticks; doubles per attempt
    #: (capped at ``backoff_base << 10``).
    backoff_base: Ticks = 200
    #: Consecutive failed attempts on one bus before it is declared dead.
    failover_threshold: int = 3
    #: Seed of the deterministic fault stream.
    seed: int = 0

    @property
    def enabled(self) -> bool:
        return self.loss_rate > 0.0 or self.garble_rate > 0.0

    def validate(self) -> "BusFaultConfig":
        if not 0.0 <= self.loss_rate < 1.0:
            raise ConfigError(f"loss_rate must be in [0, 1), "
                              f"got {self.loss_rate}")
        if not 0.0 <= self.garble_rate < 1.0:
            raise ConfigError(f"garble_rate must be in [0, 1), "
                              f"got {self.garble_rate}")
        if self.loss_rate + self.garble_rate > 0.9:
            raise ConfigError(
                "loss_rate + garble_rate must leave >= 0.1 success "
                f"probability, got {self.loss_rate + self.garble_rate}")
        if self.retry_limit < 1:
            raise ConfigError("retry_limit must be >= 1")
        if self.backoff_base < 1:
            raise ConfigError("backoff_base must be >= 1")
        if self.failover_threshold < 1:
            raise ConfigError("failover_threshold must be >= 1")
        return self


@dataclass
class ResilienceConfig:
    """Gates for the in-sim resilience services (:mod:`repro.resilience`).

    Every service is **off** by default; with all of them off the layer
    is never installed and the machine's traces stay byte-identical to a
    build without it — the same hard constraint ``BusFaultConfig``
    obeys.  Each flag enables one registered service; the knobs beside
    it only matter while that service is on.
    """

    #: Heartbeat-based crash detection, augmenting the poll-based
    #: detector in :mod:`repro.recovery.detector`.  Detection latency is
    #: roughly ``heartbeat_interval * heartbeat_miss_threshold`` versus
    #: the poll detector's ``poll_interval``.
    heartbeat: bool = False
    #: Beacon period in ticks (per cluster, staggered by cluster id).
    heartbeat_interval: Ticks = 5_000
    #: Consecutive missed beacons before a peer is suspected dead.
    heartbeat_miss_threshold: int = 3
    #: How far into the run the monitor models beacon loss when the bus
    #: fault layer is active (bounds the false-positive scan so the
    #: event heap still drains).
    heartbeat_horizon: Ticks = 240_000
    #: Circuit breaker around the kernel's user-channel send path.
    breaker: bool = False
    #: Consecutive delivery failures to one cluster before it opens.
    breaker_failure_threshold: int = 3
    #: Ticks an open breaker waits before letting a probe through.
    breaker_cooldown: Ticks = 30_000
    #: Open/half-open cycles allowed before giving up on a destination.
    breaker_max_probes: int = 8
    #: Bulkhead: partition the bounded server inbox by client class
    #: (the client's home cluster modulo ``bulkhead_partitions``), each
    #: class getting its own ``server_inbox_limit`` quota.
    bulkhead: bool = False
    bulkhead_partitions: int = 2
    #: Dead-letter queue capturing shed inbox arrivals, garbled bus
    #: transmissions and breaker-rejected sends instead of dropping
    #: them silently.
    dlq: bool = False
    #: Records retained per cluster (oldest are evicted permanently).
    dlq_limit: int = 64
    #: Ticks before a shed record is offered back to the inbox.
    dlq_retry_after: Ticks = 20_000
    #: Redelivery attempts per record before it is declared dead.
    dlq_max_retries: int = 3
    #: Idempotent-receiver guard: suppress a second PRIMARY_DEST
    #: delivery of the same (source cluster, message seqno) to the same
    #: destination process.
    idempotent: bool = False
    #: Distinct message keys remembered per cluster (sliding window).
    idempotent_window: int = 4096

    @property
    def enabled(self) -> bool:
        return (self.heartbeat or self.breaker or self.bulkhead
                or self.dlq or self.idempotent)

    def validate(self) -> "ResilienceConfig":
        if self.heartbeat_interval < 1:
            raise ConfigError("heartbeat_interval must be >= 1")
        if self.heartbeat_miss_threshold < 1:
            raise ConfigError("heartbeat_miss_threshold must be >= 1")
        if self.heartbeat_horizon < 1:
            raise ConfigError("heartbeat_horizon must be >= 1")
        if self.breaker_failure_threshold < 1:
            raise ConfigError("breaker_failure_threshold must be >= 1")
        if self.breaker_cooldown < 1:
            raise ConfigError("breaker_cooldown must be >= 1")
        if self.breaker_max_probes < 1:
            raise ConfigError("breaker_max_probes must be >= 1")
        if self.bulkhead_partitions < 1:
            raise ConfigError("bulkhead_partitions must be >= 1")
        if self.dlq_limit < 1:
            raise ConfigError("dlq_limit must be >= 1")
        if self.dlq_retry_after < 1:
            raise ConfigError("dlq_retry_after must be >= 1")
        if self.dlq_max_retries < 0:
            raise ConfigError("dlq_max_retries must be >= 0")
        if self.idempotent_window < 1:
            raise ConfigError("idempotent_window must be >= 1")
        return self


@dataclass
class MachineConfig:
    """Shape and policy of a simulated Auragen 4000 machine.

    Constraints follow section 7.1: 2-32 clusters on a dual high-speed bus,
    each with 3-7 M68000s of which two are work processors and one is the
    executive processor (the rest drive peripherals, which we fold into the
    peripheral servers).
    """

    n_clusters: int = 3
    work_processors_per_cluster: int = 2
    #: Sync trigger: reads since last sync (section 7.8; tunable per
    #: process, this is the machine default).
    sync_reads_threshold: int = 20
    #: Sync trigger: execution time since last sync, in ticks.
    sync_time_threshold: Ticks = 200_000
    #: Page size in bytes; address spaces are paged at this granularity.
    page_size: int = 1024
    #: Words (integer cells) per page: programs address memory in words.
    words_per_page: int = 128
    #: Default payload size (bytes) charged for a message when the sender
    #: does not specify one.
    default_message_bytes: int = 128
    #: Failure-detector polling interval (7.10: "periodic polling of every
    #: cluster will discover the shutdown").
    poll_interval: Ticks = 50_000
    #: Peripheral-server explicit sync interval (requests between syncs).
    server_sync_requests: int = 32
    costs: CostModel = field(default_factory=CostModel)
    #: Emit trace records (disable for large benchmark runs).
    trace_enabled: bool = True
    #: Retain raw metric sample lists (``MetricSet.series``).  On by
    #: default; the wall-clock benchmark harness turns it off so long
    #: runs keep streaming ``(count, total, min, max)`` aggregates only.
    metrics_raw_series: bool = True
    #: Negative ablations (experiment E13): disable one pillar of the
    #: design to demonstrate recovery depends on it.  Never set in
    #: production use.
    ablate_dest_backup_save: bool = False   # drop DEST_BACKUP copies (5.1)
    ablate_send_suppression: bool = False   # ignore write counts (5.4)
    #: Queue-based load leveling at server inboxes (off by default).
    #: With a limit set, a server routing entry holds at most this many
    #: queued requests; arrivals beyond it are handled per
    #: ``server_inbox_policy``.  ``None`` keeps the original unbounded
    #: behaviour byte-identical.
    server_inbox_limit: Optional[int] = None
    #: What to do with arrivals past the limit: ``"defer"`` parks them
    #: in arrival order and admits one per consume (lossless
    #: backpressure); ``"shed"`` drops them at the primary (lossy — the
    #: backup's saved copy survives, so shedding is an experiment knob,
    #: not a production mode; see docs/performance.md).
    server_inbox_policy: str = "defer"
    #: Transient-fault model for the dual bus (off by default; see
    #: :class:`BusFaultConfig`).  The machine stays free of runtime
    #: randomness — fault outcomes come from a seeded hash stream.
    bus_faults: BusFaultConfig = field(default_factory=BusFaultConfig)
    #: In-sim resilience services (all off by default; see
    #: :class:`ResilienceConfig` and :mod:`repro.resilience`).  With
    #: every flag off the service layer is never installed.
    resilience: ResilienceConfig = field(default_factory=ResilienceConfig)
    #: Workload RNG seed (the machine itself uses no randomness).
    seed: int = 0
    #: Event-queue backend for the simulator core (``heap`` /
    #: ``calendar`` / ``ladder`` — see :mod:`repro.sim.queues`).  All
    #: backends are pop-order-identical by contract, so this is purely
    #: a performance knob; scenarios set it via the ``engine:`` block.
    event_queue: str = "heap"
    #: Backend-specific parameters, validated against the backend's
    #: registered schema at machine construction.
    event_queue_params: dict = field(default_factory=dict)
    #: Intra-run parallel dispatch workers (see
    #: :class:`repro.sim.parallel.ParallelMachineLoop`): ``1`` runs the
    #: plain serial loop, ``0`` requests one worker per CPU, higher
    #: values are clamped to the CPU and cluster counts.  Dispatch
    #: order — and therefore every trace — is identical either way;
    #: the loop degrades itself to serial when measurement says
    #: parallelism does not pay.
    run_jobs: int = 1

    def validate(self) -> "MachineConfig":
        """Check section 7.1's machine constraints; return self."""
        if not 2 <= self.n_clusters <= 32:
            raise ConfigError(
                f"Auragen 4000 supports 2-32 clusters, got {self.n_clusters}")
        if self.work_processors_per_cluster < 1:
            raise ConfigError("need at least one work processor per cluster")
        total = self.work_processors_per_cluster + 1  # + executive
        if not 3 <= total + 1 <= 8:  # +1 for at least one peripheral processor
            raise ConfigError(
                "cluster processor count out of the 3-7 M68000 range")
        if self.sync_reads_threshold < 1:
            raise ConfigError("sync_reads_threshold must be >= 1")
        if self.sync_time_threshold < 1:
            raise ConfigError("sync_time_threshold must be >= 1")
        if self.page_size < 1 or self.words_per_page < 1:
            raise ConfigError("page geometry must be positive")
        if self.poll_interval < 1:
            raise ConfigError("poll_interval must be >= 1")
        if self.server_inbox_limit is not None \
                and self.server_inbox_limit < 1:
            raise ConfigError("server_inbox_limit must be >= 1 (or None)")
        if self.server_inbox_policy not in ("defer", "shed"):
            raise ConfigError(
                f"server_inbox_policy must be 'defer' or 'shed', "
                f"got {self.server_inbox_policy!r}")
        if self.run_jobs < 0:
            raise ConfigError(f"run_jobs must be >= 0 (0 = one per "
                              f"CPU), got {self.run_jobs}")
        # Imported lazily: the queue registry lives above config in the
        # package graph.  Unknown names fail here with the registry's
        # did-you-mean message; backend params are validated against
        # the registered schema when the machine builds the queue.
        from .sim.queues import QUEUE_REGISTRY
        if self.event_queue not in QUEUE_REGISTRY:
            from .scenario.registry import unknown_name_message
            raise ConfigError(unknown_name_message(
                "event queue", self.event_queue, QUEUE_REGISTRY.names()))
        self.bus_faults.validate()
        self.resilience.validate()
        return self


def small_machine(n_clusters: int = 3, seed: int = 0,
                  trace: bool = True,
                  sync_reads_threshold: Optional[int] = None) -> MachineConfig:
    """A convenient small test machine (3 clusters unless overridden)."""
    config = MachineConfig(n_clusters=n_clusters, seed=seed,
                           trace_enabled=trace)
    if sync_reads_threshold is not None:
        config.sync_reads_threshold = sync_reads_threshold
    return config.validate()
