"""Seeded randomness for workload generation.

Nothing inside the simulated machine may consult this RNG at "runtime" —
the machine itself is fully deterministic.  Randomness exists only at
*workload construction* time (transaction mixes, fork patterns, crash
schedules), so that a workload is reproducible from its seed while still
exploring a wide space in property tests.
"""

from __future__ import annotations

import random
from typing import List, Sequence, TypeVar

T = TypeVar("T")


class DeterministicRNG:
    """A thin, explicitly-seeded wrapper over :class:`random.Random`.

    Wrapping (rather than using ``random.Random`` directly) gives a single
    audit point: every source of randomness in the library flows through
    this class, and :meth:`fork` derives independent, reproducible child
    streams for sub-generators.
    """

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self._random = random.Random(seed)

    def fork(self, label: str) -> "DeterministicRNG":
        """Derive an independent child stream named by ``label``.

        The child seed depends only on the parent seed and the label, so
        adding a new consumer does not perturb existing streams.
        """
        child_seed = (self.seed * 1_000_003 + _stable_hash(label)) % (2 ** 63)
        return DeterministicRNG(child_seed)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high]."""
        return self._random.randint(low, high)

    def choice(self, options: Sequence[T]) -> T:
        """Uniform choice from a non-empty sequence."""
        return self._random.choice(options)

    def shuffle(self, items: List[T]) -> None:
        """In-place Fisher-Yates shuffle."""
        self._random.shuffle(items)

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self._random.random()

    def expovariate(self, rate: float) -> float:
        """Exponentially distributed float with the given rate."""
        return self._random.expovariate(rate)

    def sample(self, options: Sequence[T], count: int) -> List[T]:
        """``count`` distinct elements drawn without replacement."""
        return self._random.sample(options, count)


def _stable_hash(text: str) -> int:
    """A process-independent string hash (``hash()`` is salted per process)."""
    value = 0
    for char in text:
        value = (value * 131 + ord(char)) % (2 ** 61 - 1)
    return value
