"""Deterministic discrete-event simulation kernel.

This package is the substrate for the whole reproduction: clusters,
processors, the intercluster bus, kernels and failure injection are all
driven from one :class:`~repro.sim.loop.Simulator` event loop with integer
virtual time, giving bit-for-bit reproducible runs.
"""

from .events import Event, EventHeap, SchedulingError, SimulationError
from .loop import Simulator
from .rng import DeterministicRNG
from .trace import TraceLog, TraceRecord

__all__ = [
    "Event",
    "EventHeap",
    "SchedulingError",
    "SimulationError",
    "Simulator",
    "DeterministicRNG",
    "TraceLog",
    "TraceRecord",
]
