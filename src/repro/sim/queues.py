"""Pluggable event-queue backends for the simulator core.

The event loop dispatches through a narrow queue protocol —
:class:`EventQueue` — with three interchangeable implementations:

``heap``
    The binary heap from :mod:`repro.sim.events` (the default).  C-level
    ``heapq`` on tuple keys; unbeatable at the small queue depths the
    current workloads produce (the dense OLTP shape holds ~3–10 pending
    events), and the reference implementation the other two are held to.
``calendar``
    A calendar queue (Brown, CACM 1988): events bucketed by virtual-time
    "day", O(1) insert into a short per-day list, pop from the earliest
    non-empty day.  Wins when thousands of events spread across many
    distinct timestamps — the fleet-scale shape of ROADMAP item 1.
``ladder``
    A ladder queue (Tang et al., TOMACS 2005): an unsorted far-future
    *top* band, recursively split *rungs*, and a small sorted *bottom*.
    Insert is O(1) append for far-future events; sorting effort is
    deferred until events are near due, which suits bursty schedules
    (timeout storms, mass retransmissions) where most far-future events
    are cancelled before ever needing an ordered position.

The contract, enforced by the differential test in
``tests/test_sim_events_model.py``, is *identical observable behaviour*:
the exact pop order of the heap — including ``(time, priority, seq)``
tie-breaking — and the same lazy-cancellation live-count accounting on
every operation (``pop`` / ``pop_next`` / ``pop_batch`` / ``peek_time``).
Determinism of a run therefore never depends on which backend executes
it; the healthy-path byte-identity gates run against all three.

Both alternative backends share one skeleton (:class:`_QueueBase`) that
implements the whole protocol in terms of two structure-specific
primitives — peek-minimum and pop-minimum — so the boundary semantics
pinned in ``tests/test_sim_pop_batch.py`` are written once, not three
times.

Backends register on :data:`QUEUE_REGISTRY` (the generic scenario
registry: did-you-mean errors, parameter schemas) and are selected via
``repro bench --queue`` or a scenario file's ``engine:`` block; see
``docs/performance.md`` ("Choosing an event queue").
"""

from __future__ import annotations

from bisect import insort
from heapq import heappop, heappush
from typing import Any, Callable, Dict, List, Optional, Protocol, Tuple

from ..scenario.registry import EntryMetadata, ParamSpec, Registry
from .events import Event, EventHeap, SchedulingError

#: Queue entries mirror the heap's: comparison key inline, event last.
_Entry = Tuple[int, int, int, Event]


class EventQueue(Protocol):
    """What the simulator requires of an event-queue backend.

    Implementations must reproduce :class:`~repro.sim.events.EventHeap`
    behaviour exactly: total order ``(time, priority, seq)``, lazy
    cancellation with live-count accounting on every scan, inclusive
    ``until`` bounds, and the same-tick watch flag the batched loop's
    fallback path relies on.
    """

    same_time_watch: int
    same_time_dirty: bool

    def __len__(self) -> int: ...

    def push(self, time: int, action: Callable[[], None],
             priority: int = 0, label: str = "") -> Event: ...

    def pop(self) -> Optional[Event]: ...

    def pop_next(self, until: Optional[int] = None) -> Optional[Event]: ...

    def pop_batch(self, until: Optional[int] = None,
                  limit: Optional[int] = None,
                  into: Optional[List[Event]] = None) -> List[Event]: ...

    def peek_time(self) -> Optional[int]: ...

    def reinsert(self, event: Event) -> None: ...


class _QueueBase:
    """Protocol skeleton over two primitives: ``_head`` (peek the
    minimum entry or ``None``) and ``_pop_head`` (remove it).

    Subclasses provide ``_insert(entry)`` plus those two; everything
    observable — seq assignment, live counting, lazy discard, bound
    semantics, batch draining, the same-tick watch — lives here so all
    backends share it verbatim.
    """

    def __init__(self) -> None:
        self._seq = 0
        self._live = 0
        self.same_time_watch = -1
        self.same_time_dirty = False

    # subclasses implement:
    def _insert(self, entry: _Entry) -> None:  # pragma: no cover
        raise NotImplementedError

    def _head(self) -> Optional[_Entry]:  # pragma: no cover
        raise NotImplementedError

    def _pop_head(self) -> _Entry:  # pragma: no cover
        raise NotImplementedError

    def __len__(self) -> int:
        return self._live

    def push(self, time: int, action: Callable[[], None],
             priority: int = 0, label: str = "") -> Event:
        if time < 0:
            raise SchedulingError(f"event time must be >= 0, got {time}")
        if time == self.same_time_watch:
            self.same_time_dirty = True
        seq = self._seq
        self._seq = seq + 1
        self._live += 1
        event = Event(time, priority, seq, action, label)
        self._insert((time, priority, seq, event))
        return event

    def reinsert(self, event: Event) -> None:
        self._live += 1
        self._insert((event.time, event.priority, event.seq, event))

    def pop(self) -> Optional[Event]:
        while True:
            entry = self._head()
            if entry is None:
                return None
            self._pop_head()
            self._live -= 1
            if not entry[3].cancelled:
                return entry[3]

    def pop_next(self, until: Optional[int] = None) -> Optional[Event]:
        while True:
            entry = self._head()
            if entry is None:
                return None
            if entry[3].cancelled:
                self._pop_head()
                self._live -= 1
                continue
            if until is not None and entry[0] > until:
                return None
            self._pop_head()
            self._live -= 1
            return entry[3]

    def pop_batch(self, until: Optional[int] = None,
                  limit: Optional[int] = None,
                  into: Optional[List[Event]] = None) -> List[Event]:
        if into is None:
            batch: List[Event] = []
        else:
            batch = into
            batch.clear()
        while True:
            entry = self._head()
            if entry is None:
                return batch
            if entry[3].cancelled:
                self._pop_head()
                self._live -= 1
                continue
            if until is not None and entry[0] > until:
                return batch
            break
        run_time = entry[0]
        while True:
            entry = self._head()
            if entry is None or entry[0] != run_time:
                return batch
            if limit is not None and len(batch) >= limit:
                return batch
            self._pop_head()
            self._live -= 1
            if entry[3].cancelled:
                continue
            batch.append(entry[3])

    def peek_time(self) -> Optional[int]:
        while True:
            entry = self._head()
            if entry is None:
                return None
            if entry[3].cancelled:
                self._pop_head()
                self._live -= 1
                continue
            return entry[0]


class CalendarQueue(_QueueBase):
    """A day-bucketed calendar queue.

    Virtual time is divided into fixed-width *days*; each day owns a
    sorted list of entries, and a small heap of day indices finds the
    earliest non-empty day.  Insert costs one ``insort`` into a short
    per-day list (O(1) when ``day_width`` matches the schedule density);
    pops walk the current day front-to-back, so a run of same-time
    events — the batch-dispatch case — drains from one contiguous list.

    Unlike Brown's original, days are allocated lazily in a dict rather
    than a fixed modular array, so no resize heuristics are needed and
    sparse schedules don't pay for empty buckets.
    """

    def __init__(self, day_width: int = 64) -> None:
        super().__init__()
        if day_width < 1:
            raise SchedulingError(
                f"day_width must be >= 1, got {day_width}")
        self._day_width = day_width
        self._buckets: Dict[int, List[_Entry]] = {}
        self._days: List[int] = []          # min-heap of day indices

    def _insert(self, entry: _Entry) -> None:
        day = entry[0] // self._day_width
        bucket = self._buckets.get(day)
        if bucket is None:
            self._buckets[day] = [entry]
            heappush(self._days, day)
        else:
            insort(bucket, entry)

    def _head(self) -> Optional[_Entry]:
        days = self._days
        buckets = self._buckets
        while days:
            day = days[0]
            bucket = buckets.get(day)
            if bucket:
                return bucket[0]
            # Day exhausted: drop the index and any empty bucket shell.
            heappop(days)
            buckets.pop(day, None)
        return None

    def _pop_head(self) -> _Entry:
        day = self._days[0]
        bucket = self._buckets[day]
        entry = bucket.pop(0)
        if not bucket:
            del self._buckets[day]
            heappop(self._days)
        return entry


class _Rung:
    """One rung of the ladder: a span of virtual time cut into
    equal-width buckets, consumed front to back."""

    __slots__ = ("start", "width", "buckets", "cur")

    def __init__(self, start: int, width: int, n_buckets: int) -> None:
        self.start = start
        self.width = width
        self.buckets: List[List[_Entry]] = [[] for _ in range(n_buckets)]
        self.cur = 0

    @property
    def cur_start(self) -> int:
        """Lowest time still insertable into this rung."""
        return self.start + self.cur * self.width

    @property
    def end(self) -> int:
        return self.start + len(self.buckets) * self.width

    def add(self, entry: _Entry) -> None:
        self.buckets[(entry[0] - self.start) // self.width].append(entry)

    def next_nonempty_bucket(self) -> Optional[List[_Entry]]:
        """Detach and return the next non-empty bucket, advancing the
        consumption cursor past it; ``None`` when the rung is spent."""
        buckets = self.buckets
        n = len(buckets)
        cur = self.cur
        while cur < n and not buckets[cur]:
            cur += 1
        if cur == n:
            self.cur = n
            return None
        bucket = buckets[cur]
        buckets[cur] = []
        self.cur = cur + 1
        return bucket


class LadderQueue(_QueueBase):
    """A ladder queue: unsorted *top*, splitting *rungs*, sorted *bottom*.

    Far-future events append unsorted to the top band in O(1).  When the
    sorted bottom runs dry, the nearest unsorted material (a rung bucket,
    or the whole top) is either sorted into a fresh bottom — when it is
    small — or split into a finer rung, deferring the sort until those
    events are nearly due.  Events cancelled while parked in the top or
    a rung are discarded during a later lazy scan without ever being
    sorted, which is the structure's advantage on timeout-heavy
    schedules.

    The structures tile virtual time in order — bottom < rungs (finest
    to coarsest remaining span) < top — so an insert lands in the first
    band whose remaining range covers its timestamp; anything earlier
    than every band goes into the sorted bottom directly.
    """

    def __init__(self, bottom_threshold: int = 32) -> None:
        super().__init__()
        if bottom_threshold < 1:
            raise SchedulingError(
                f"bottom_threshold must be >= 1, got {bottom_threshold}")
        self._threshold = bottom_threshold
        self._bottom: List[_Entry] = []
        self._rungs: List[_Rung] = []       # [0] coarsest … [-1] finest
        self._top: List[_Entry] = []
        self._top_start = 0                 # top covers [_top_start, inf)
        self._top_max = -1

    def _insert(self, entry: _Entry) -> None:
        time = entry[0]
        if time >= self._top_start:
            self._top.append(entry)
            if time > self._top_max:
                self._top_max = time
            return
        for rung in reversed(self._rungs):   # finest (nearest) first
            if rung.cur_start <= time < rung.end:
                rung.add(entry)
                return
        insort(self._bottom, entry)

    def _spawn_rung(self, entries: List[_Entry], lo: int,
                    hi: int) -> bool:
        """Split ``entries`` (all with times in ``[lo, hi)``) into a new
        finest rung covering that *entire* span; ``False`` when the span
        is a single tick or every entry shares one timestamp (sorting
        directly is then both cheap and safe).

        Covering the full source span — not just ``[min(entries),
        max(entries)]`` — is a correctness requirement, not a tidiness
        one: the bands must tile virtual time contiguously (bottom <
        rungs < top) so a later push always lands in the band that
        drains at its position.  A gap between a rung's top edge and its
        parent's next bucket would send gap-timed pushes into the sorted
        bottom *ahead of* earlier events still parked in the rung.
        """
        span = hi - lo
        if span <= 1:
            return False
        first = entries[0][0]
        if all(entry[0] == first for entry in entries):
            return False
        width = (span - 1) // len(entries) + 1
        rung = _Rung(lo, width, (span - 1) // width + 1)
        for entry in entries:
            rung.add(entry)
        self._rungs.append(rung)
        return True

    def _ensure_bottom(self) -> None:
        while not self._bottom:
            if self._rungs:
                rung = self._rungs[-1]
                bucket = rung.next_nonempty_bucket()
                if bucket is None:
                    self._rungs.pop()
                    continue
                # The detached bucket sat at index cur-1: recover its span
                # so a spawned child rung tiles it exactly.
                b_start = rung.start + (rung.cur - 1) * rung.width
                if len(bucket) > self._threshold \
                        and self._spawn_rung(bucket, b_start,
                                             b_start + rung.width):
                    continue
                bucket.sort()
                self._bottom = bucket
                continue
            if self._top:
                top, self._top = self._top, []
                lo = min(entry[0] for entry in top)
                self._top_start = self._top_max + 1
                if len(top) > self._threshold \
                        and self._spawn_rung(top, lo, self._top_start):
                    continue
                top.sort()
                self._bottom = top
                continue
            return

    def _head(self) -> Optional[_Entry]:
        self._ensure_bottom()
        bottom = self._bottom
        return bottom[0] if bottom else None

    def _pop_head(self) -> _Entry:
        return self._bottom.pop(0)


# -- registry ----------------------------------------------------------------

#: name -> factory producing a fresh :class:`EventQueue`.  The scenario
#: ``engine.queue`` block and ``repro bench --queue`` both resolve here,
#: so unknown names fail with the standard did-you-mean message.
QUEUE_REGISTRY: Registry[Callable[..., Any]] = Registry("event queue")

QUEUE_REGISTRY.register(
    "heap", EventHeap,
    EntryMetadata("binary heap (C heapq on tuple keys) — the default; "
                  "best at small queue depths"))
QUEUE_REGISTRY.register(
    "calendar", CalendarQueue,
    EntryMetadata("calendar queue: day-bucketed, O(1) insert — wins on "
                  "wide schedules with many distinct timestamps",
                  params={"day_width": ParamSpec(
                      int, "virtual ticks per calendar day", default=64)}))
QUEUE_REGISTRY.register(
    "ladder", LadderQueue,
    EntryMetadata("ladder queue: deferred sorting of far-future events — "
                  "wins on bursty/timeout-heavy schedules",
                  params={"bottom_threshold": ParamSpec(
                      int, "max events sorted into the bottom rung at "
                           "once", default=32)}))


def make_queue(name: str, params: Optional[Dict[str, Any]] = None) -> Any:
    """Build a queue backend by registered name, validating ``params``
    against the backend's schema (loud unknown-key/type errors)."""
    from ..scenario.registry import validate_params

    factory = QUEUE_REGISTRY.get(name)
    spec = QUEUE_REGISTRY.metadata(name).params
    normalized = validate_params(params, spec, f"queue[{name}].params")
    return factory(**normalized)
