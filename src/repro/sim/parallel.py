"""Conservative intra-run parallel dispatch: :class:`ParallelMachineLoop`.

The campaign engine (PR 6) parallelizes *across* runs — independent
machines on worker processes.  This module is the other axis: worker
threads *inside one run*, partitioned by cluster affinity, with the
classic conservative-DES safety argument (Chandy/Misra): two clusters
can only influence each other through the intercluster bus, and a bus
transfer costs at least ``CostModel.bus_latency`` ticks, so events less
than one bus latency apart on *different* clusters cannot have a
causal path between them.  The loop therefore advances time in
*lookahead windows* of that width, hands each cluster's events to a
sticky per-cluster worker inside the window, and barriers at every
window edge.

What the conservative argument does **not** license here is reordering:
the repository's determinism contract is *byte-identical traces*, which
pins the total ``(time, priority, seq)`` order — including insertion-seq
tie-breaking, which any cross-partition overlap would scramble the
moment two actions push events that tie on ``(time, priority)``.  The
loop therefore uses an **ordered handoff**: within a window, event
groups flow to partition workers in exact global key order, and each
handoff completes before the next begins.  That preserves serial
semantics bit for bit (the byte-identity gate in CI holds by
construction, healthy and fault paths alike) at the price of restricting
the attainable overlap to dispatch bookkeeping — and on CPython the GIL
serializes even that.

This makes honest measurement load-bearing rather than optional:
``repro bench --run-jobs N`` times the parallel loop against the serial
loop on the same workload and records the ratio.  When the ratio falls
below :data:`RATIO_FLOOR` (0.95 — the acceptance floor: parallel mode
must never cost more than 5% over serial), the loop **degrades**: it
routes subsequent runs through the serial fast path, reusing the same
requested-vs-effective jobs accounting the campaign pool introduced
(``jobs_requested`` / ``jobs_effective``), so asking for intra-run
parallelism can never make a run slower than not asking.  A one-core
box degrades at construction, before any thread is spawned.

The machinery is exercised for real in non-degraded mode — thread
workers, sticky cluster affinity, window barriers, dirty-flag fallback —
so a runtime without a GIL (or a future machine model with provably
bus-isolated kernels) inherits a working engine and simply starts
winning the measured-ratio gate instead of losing it.
"""

from __future__ import annotations

import threading
from queue import SimpleQueue
from typing import Any, Dict, List, Optional, Tuple, TYPE_CHECKING

from ..types import ID_SPACE
from .events import Event, SimulationError

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from ..core.machine import Machine

#: Minimum acceptable parallel/serial events-per-second ratio.  Below
#: this the loop auto-degrades to the serial fast path.
RATIO_FLOOR = 0.95

#: Affinity value for events that may touch machine-global state (bus,
#: failure detector, fault injection).  Globals execute on the
#: coordinating thread.
GLOBAL = -1


def _affinity(label: str) -> int:
    """Map an event label to its cluster partition, or :data:`GLOBAL`.

    The label conventions are the scheduler's (``sched.*:<pid>``,
    ``alarm:<pid>:<seq>``) and the executive's (``exec[c<k>]``); pids
    encode their home cluster in the id space.  Anything unrecognized
    is conservatively global — misclassification can cost overlap,
    never correctness, because ordered handoff preserves the total
    order regardless of which worker runs a group.
    """
    if label.startswith("sched."):
        try:
            return int(label.rsplit(":", 1)[1]) // ID_SPACE
        except (IndexError, ValueError):
            return GLOBAL
    if label.startswith("exec[c"):
        try:
            return int(label[6:label.index("]")])
        except ValueError:
            return GLOBAL
    if label.startswith("alarm:"):
        try:
            return int(label.split(":")[1]) // ID_SPACE
        except (IndexError, ValueError):
            return GLOBAL
    return GLOBAL


class _Worker(threading.Thread):
    """One partition worker: executes handed-off event groups in order.

    The coordinator blocks on each group's completion before releasing
    the next (ordered handoff), so at most one action runs at a time
    machine-wide and the queue put/get pairs give the necessary
    happens-before edges for every shared structure the actions touch.
    """

    def __init__(self, index: int) -> None:
        super().__init__(name=f"sim-partition-{index}", daemon=True)
        self.inbox: SimpleQueue = SimpleQueue()
        self.start()

    def run(self) -> None:
        while True:
            item = self.inbox.get()
            if item is None:
                return
            group, watch_heap, reply = item
            executed = 0
            tail: Optional[List[Event]] = None
            error: Optional[BaseException] = None
            try:
                for position, event in enumerate(group):
                    if event.cancelled:
                        continue
                    executed += 1
                    event.action()
                    if watch_heap.same_time_dirty:
                        tail = group[position + 1:]
                        break
            except BaseException as exc:  # re-raised by the coordinator
                error = exc
            reply.put((executed, tail, error))

    def stop(self) -> None:
        self.inbox.put(None)


class ParallelMachineLoop:
    """Windowed, partition-affine event dispatch for one machine run.

    Construct over a built machine, then call :meth:`run` /
    :meth:`run_until_idle` instead of the simulator's.  ``jobs``
    follows the campaign pool's convention: ``0`` means one worker per
    CPU, explicit requests are clamped to the CPU count, and the
    effective count is further capped at the cluster count (workers map
    to clusters).  An effective count below two degrades to the plain
    serial loop at construction; a recorded measured ratio below
    :data:`RATIO_FLOOR` degrades later runs (see module docstring).
    """

    def __init__(self, machine: "Machine", jobs: int = 0,
                 lookahead: Optional[int] = None,
                 measured_ratio: Optional[float] = None,
                 force: bool = False) -> None:
        from ..exec.pool import resolve_jobs

        self.machine = machine
        self.jobs_requested = jobs
        if force and jobs >= 2:
            # The byte-identity gate runs the parallel machinery even on
            # boxes the CPU clamp would degrade (identity must hold
            # everywhere CI lands, including one-core runners).
            resolved = min(jobs, machine.config.n_clusters)
        else:
            resolved = min(resolve_jobs(jobs), machine.config.n_clusters)
        self.jobs_effective = resolved
        #: The safe-window width: the minimum time for one cluster's
        #: actions to become visible to another (one bus latency).
        self.lookahead = (lookahead if lookahead is not None
                          else machine.config.costs.bus_latency)
        if self.lookahead < 1:
            raise SimulationError(
                f"lookahead must be >= 1 tick, got {self.lookahead}")
        self.measured_ratio = measured_ratio
        self.degraded = False
        self.degrade_reason: Optional[str] = None
        self.windows = 0
        self.parallel_windows = 0
        self.handoffs = 0
        self._workers: List[_Worker] = []
        if resolved < 2:
            self._degrade("fewer than two workers after the CPU/cluster "
                          "clamp")
        if measured_ratio is not None and measured_ratio < RATIO_FLOOR:
            self._degrade(f"measured ratio {measured_ratio:.3f} below "
                          f"the {RATIO_FLOOR} floor")

    # -- degrade accounting -------------------------------------------------

    def _degrade(self, reason: str) -> None:
        if not self.degraded:
            self.degraded = True
            self.degrade_reason = reason
            self.jobs_effective = 1
        self.close()

    def record_measured_ratio(self, ratio: float) -> bool:
        """Feed back a parallel/serial throughput measurement (the bench
        harness computes it).  Returns True when the loop degraded."""
        self.measured_ratio = ratio
        if ratio < RATIO_FLOOR:
            self._degrade(f"measured ratio {ratio:.3f} below the "
                          f"{RATIO_FLOOR} floor")
        return self.degraded

    def close(self) -> None:
        """Stop worker threads (idempotent; safe on a degraded loop)."""
        workers, self._workers = self._workers, []
        for worker in workers:
            worker.stop()

    def stats(self) -> Dict[str, Any]:
        """Run accounting for reports: window and handoff counts, the
        jobs clamp, and the degrade state."""
        return {
            "jobs_requested": self.jobs_requested,
            "jobs_effective": self.jobs_effective,
            "lookahead": self.lookahead,
            "windows": self.windows,
            "parallel_windows": self.parallel_windows,
            "handoffs": self.handoffs,
            "degraded": self.degraded,
            "degrade_reason": self.degrade_reason,
            "measured_ratio": self.measured_ratio,
        }

    # -- execution ----------------------------------------------------------

    def run(self, until: Optional[int] = None,
            max_events: Optional[int] = None) -> int:
        """Mirror of :meth:`~repro.sim.loop.Simulator.run` (same bound
        semantics, same return value, same event accounting)."""
        sim = self.machine.sim
        if self.degraded:
            return sim.run(until=until, max_events=max_events)
        if sim._running:
            raise SimulationError("simulator is not reentrant")
        if not self._workers:
            self._workers = [_Worker(index)
                             for index in range(self.jobs_effective)]
        sim._running = True
        heap = sim._heap
        executed = 0
        try:
            executed = self._run_windows(sim, heap, until, max_events)
            if until is not None and sim.now < until:
                sim.now = until
            return sim.now
        finally:
            heap.same_time_watch = -1
            sim._event_count += executed
            sim._running = False

    def run_until_idle(self, max_events: int = 10_000_000) -> int:
        self.run(max_events=max_events)
        if self.machine.sim.pending():
            raise SimulationError(
                f"simulation did not go idle within {max_events} events "
                f"({self.machine.sim.pending()} still pending)")
        return self.machine.sim.now

    def _run_windows(self, sim, heap, until: Optional[int],
                     max_events: Optional[int]) -> int:
        """The windowed dispatch loop.

        Batches (same-timestamp runs, via the backend-neutral
        ``pop_batch`` protocol) are grouped into lookahead windows;
        inside a window, each batch splits into affinity groups that go
        to sticky partition workers in key order.  The same-tick
        dirty-flag fallback is the serial loop's, applied per event by
        whichever thread executes it.
        """
        executed = 0
        pop_batch = heap.pop_batch
        reinsert = heap.reinsert
        buffer: List[Event] = []
        window_end: Optional[int] = None       # exclusive
        window_affinities: set = set()
        while True:
            if max_events is not None:
                remaining = max_events - executed
                if remaining <= 0:
                    break
                batch = pop_batch(until, remaining, buffer)
            else:
                batch = pop_batch(until, None, buffer)
            if not batch:
                break
            now = batch[0].time
            if window_end is None or now >= window_end:
                # Window barrier: all handoffs in the previous window
                # have completed (handoffs are synchronous), so crossing
                # the edge needs no further synchronization.
                window_end = now + self.lookahead
                if len(window_affinities) > 1:
                    self.parallel_windows += 1
                window_affinities = set()
                self.windows += 1
            sim.now = now
            heap.same_time_watch = now
            heap.same_time_dirty = False
            groups = _split_groups(batch)
            for index, (group, affinity) in enumerate(groups):
                window_affinities.add(affinity)
                count, tail, error = self._dispatch(group, affinity, heap)
                executed += count
                if error is not None:
                    raise error
                if tail is not None:
                    # A same-tick push landed mid-group: reinsert the
                    # unexecuted remainder and every undispatched group
                    # (original keys preserved) and re-pop, so late
                    # arrivals order in exactly as the serial loop
                    # would.
                    for event in tail:
                        if not event.cancelled:
                            reinsert(event)
                    for later_group, _ in groups[index + 1:]:
                        for event in later_group:
                            if not event.cancelled:
                                reinsert(event)
                    break
        return executed

    def _dispatch(self, group: List[Event], affinity: int,
                  heap) -> Tuple[int, Optional[List[Event]],
                                 Optional[BaseException]]:
        """Run one affinity group: global groups inline on the
        coordinator, cluster groups on their sticky worker (ordered
        handoff — this call returns only when the group is done)."""
        if affinity == GLOBAL or not self._workers:
            executed = 0
            for position, event in enumerate(group):
                if event.cancelled:
                    continue
                executed += 1
                event.action()
                if heap.same_time_dirty:
                    return executed, group[position + 1:], None
            return executed, None, None
        worker = self._workers[affinity % len(self._workers)]
        reply: SimpleQueue = SimpleQueue()
        worker.inbox.put((group, heap, reply))
        self.handoffs += 1
        return reply.get()


def _split_groups(batch: List[Event]) -> List[Tuple[List[Event], int]]:
    """Split a same-timestamp batch into runs of consecutive events
    sharing an affinity, preserving order.  Consecutive-only grouping
    keeps the key order intact — a worker never sees an event that an
    earlier-keyed event of another partition should precede."""
    groups: List[Tuple[List[Event], int]] = []
    current: List[Event] = []
    current_affinity: Optional[int] = None
    for event in batch:
        affinity = _affinity(event.label)
        if current_affinity is None or affinity == current_affinity:
            current.append(event)
            current_affinity = affinity
        else:
            groups.append((current, current_affinity))
            current = [event]
            current_affinity = affinity
    if current:
        groups.append((current, current_affinity
                       if current_affinity is not None else GLOBAL))
    return groups
