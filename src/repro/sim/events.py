"""Event primitives for the discrete-event simulator.

The simulator is the substrate everything else in :mod:`repro` runs on: the
intercluster bus, the per-cluster kernels, processors, disks, and failure
injection are all expressed as events on a single global heap.

Determinism is a hard requirement of the reproduction (paper section 4: if
two processes start in the identical state and receive identical input they
behave identically).  Two design rules enforce it here:

* Events are totally ordered by ``(time, priority, seq)`` where ``seq`` is a
  monotonically increasing insertion counter.  Ties in virtual time are
  therefore broken deterministically by scheduling order, never by object
  identity or hash order.
* Virtual time is an integer number of *ticks* (we interpret one tick as a
  microsecond throughout), so there is no floating-point drift.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, List, Optional


class SimulationError(Exception):
    """Base class for errors raised by the simulation kernel."""


class SchedulingError(SimulationError):
    """Raised for invalid scheduling requests (negative delay, dead event)."""


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events compare by ``(time, priority, seq)``; the callback itself is
    excluded from comparison.  Lower ``priority`` fires first among events
    scheduled for the same tick.
    """

    time: int
    priority: int
    seq: int
    action: Callable[[], None] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so the event loop skips it when popped."""
        self.cancelled = True


class EventHeap:
    """A deterministic min-heap of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._seq = 0
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def push(self, time: int, action: Callable[[], None], priority: int = 0,
             label: str = "") -> Event:
        """Schedule ``action`` at absolute virtual ``time`` and return the event."""
        if time < 0:
            raise SchedulingError(f"event time must be >= 0, got {time}")
        event = Event(time=time, priority=priority, seq=self._seq,
                      action=action, label=label)
        self._seq += 1
        self._live += 1
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the next live event, or ``None`` if empty.

        Cancelled events are discarded lazily here rather than eagerly
        removed from the heap, keeping :meth:`Event.cancel` O(1).
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            self._live -= 1
            if event.cancelled:
                continue
            return event
        return None

    def peek_time(self) -> Optional[int]:
        """Return the virtual time of the next live event without popping it.

        Cancelled events discarded here must decrement the unpopped count
        exactly as :meth:`pop` does — otherwise ``len(heap)`` reports
        phantom events after a peek past a cancelled head, and callers
        like ``Simulator.run_until_idle`` see a non-zero ``pending()``
        with nothing left to run.
        """
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
            self._live -= 1
        if not self._heap:
            return None
        return self._heap[0].time
