"""Event primitives for the discrete-event simulator.

The simulator is the substrate everything else in :mod:`repro` runs on: the
intercluster bus, the per-cluster kernels, processors, disks, and failure
injection are all expressed as events on a single global heap.

Determinism is a hard requirement of the reproduction (paper section 4: if
two processes start in the identical state and receive identical input they
behave identically).  Two design rules enforce it here:

* Events are totally ordered by ``(time, priority, seq)`` where ``seq`` is a
  monotonically increasing insertion counter.  Ties in virtual time are
  therefore broken deterministically by scheduling order, never by object
  identity or hash order.
* Virtual time is an integer number of *ticks* (we interpret one tick as a
  microsecond throughout), so there is no floating-point drift.

Performance: the heap stores plain ``(time, priority, seq, event)`` tuples
so every sift comparison is a C-level tuple compare — ``seq`` is unique,
so two entries never tie and the :class:`Event` objects themselves are
never compared during heap maintenance.  ``Event`` uses ``__slots__`` and
a hand-written ``__init__``; at millions of events per run the dataclass
machinery it replaced was a measurable fraction of total wall-clock
(see ``docs/performance.md``).
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Callable, List, Optional, Tuple


class SimulationError(Exception):
    """Base class for errors raised by the simulation kernel."""


class SchedulingError(SimulationError):
    """Raised for invalid scheduling requests (negative delay, dead event)."""


class Event:
    """A scheduled callback.

    Events order by ``(time, priority, seq)``; the callback itself is
    excluded from comparison.  Lower ``priority`` fires first among events
    scheduled for the same tick.
    """

    __slots__ = ("time", "priority", "seq", "action", "label", "cancelled")

    def __init__(self, time: int, priority: int, seq: int,
                 action: Callable[[], None], label: str = "",
                 cancelled: bool = False) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.action = action
        self.label = label
        self.cancelled = cancelled

    def cancel(self) -> None:
        """Mark the event so the event loop skips it when popped."""
        self.cancelled = True

    # Events rarely meet a comparison in the fast path (the heap compares
    # key tuples), but the ordering contract remains part of the API.

    def _key(self) -> Tuple[int, int, int]:
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: "Event") -> bool:
        return self._key() < other._key()

    def __le__(self, other: "Event") -> bool:
        return self._key() <= other._key()

    def __gt__(self, other: "Event") -> bool:
        return self._key() > other._key()

    def __ge__(self, other: "Event") -> bool:
        return self._key() >= other._key()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return (f"Event(t={self.time}, prio={self.priority}, "
                f"seq={self.seq}, label={self.label!r}{state})")


#: One heap entry: the comparison key inline, then the event handle and
#: the bare callback.  ``seq`` is unique, so the trailing elements never
#: meet a comparison; carrying the action in the entry saves the
#: per-dispatch attribute load on the event loop's hot path.
_Entry = Tuple[int, int, int, Event, Callable[[], None]]


class EventHeap:
    """A deterministic min-heap of :class:`Event` objects.

    Beyond the classic push/pop surface this exposes the *batch* protocol
    the event loop dispatches through (see :class:`~repro.sim.queues.EventQueue`
    for the formal contract shared with the calendar and ladder backends):

    * :meth:`pop_batch` drains one run of same-timestamp events in a
      single call, so the loop pays its bound checks and bookkeeping once
      per *timestamp* instead of once per event;
    * ``same_time_watch`` / ``same_time_dirty`` let the loop detect a push
      landing at the timestamp of the batch it is currently executing —
      the one case where batch dispatch could reorder relative to
      single-event dispatch — and fall back via :meth:`reinsert`.
    """

    __slots__ = ("_heap", "_seq", "_live", "same_time_watch",
                 "same_time_dirty")

    def __init__(self) -> None:
        self._heap: List[_Entry] = []
        self._seq = 0
        self._live = 0
        #: Timestamp the event loop is currently executing a batch at, or
        #: -1.  A push at exactly this time sets ``same_time_dirty``.
        self.same_time_watch = -1
        self.same_time_dirty = False

    def __len__(self) -> int:
        return self._live

    def push(self, time: int, action: Callable[[], None], priority: int = 0,
             label: str = "") -> Event:
        """Schedule ``action`` at absolute virtual ``time`` and return the event."""
        if time < 0:
            raise SchedulingError(f"event time must be >= 0, got {time}")
        if time == self.same_time_watch:
            self.same_time_dirty = True
        seq = self._seq
        self._seq = seq + 1
        self._live += 1
        event = Event(time, priority, seq, action, label)
        heappush(self._heap, (time, priority, seq, event, action))
        return event

    def reinsert(self, event: Event) -> None:
        """Put a popped-but-unexecuted event back, keeping its original key.

        Used by the event loop's same-tick fallback: when a batch member's
        action schedules new work at the batch's own timestamp, the
        undispatched tail of the batch is reinserted and re-popped in key
        order against the late arrivals.  The original ``(time, priority,
        seq)`` is preserved, so reinserted events keep their place in the
        total order.
        """
        self._live += 1
        heappush(self._heap, (event.time, event.priority, event.seq, event,
                              event.action))

    def pop(self) -> Optional[Event]:
        """Remove and return the next live event, or ``None`` if empty.

        Cancelled events are discarded lazily here rather than eagerly
        removed from the heap, keeping :meth:`Event.cancel` O(1).
        """
        heap = self._heap
        while heap:
            event = heappop(heap)[3]
            self._live -= 1
            if event.cancelled:
                continue
            return event
        return None

    def pop_next(self, until: Optional[int] = None) -> Optional[Event]:
        """Remove and return the next live event at ``time <= until``.

        The combined peek-and-pop the event loop runs: one lazy-discard
        pass serves both the bound check and the pop, where the old
        ``peek_time()``-then-``pop()`` pairing scanned cancelled heads
        twice per iteration.  An event beyond ``until`` stays in the heap
        and ``None`` is returned.  Discarded cancelled events decrement
        the live count exactly as :meth:`pop` does.
        """
        heap = self._heap
        while heap:
            head = heap[0]
            if head[3].cancelled:
                heappop(heap)
                self._live -= 1
                continue
            if until is not None and head[0] > until:
                return None
            heappop(heap)
            self._live -= 1
            return head[3]
        return None

    def pop_batch(self, until: Optional[int] = None,
                  limit: Optional[int] = None,
                  into: Optional[List[Event]] = None) -> List[Event]:
        """Remove and return one run of live events sharing a timestamp.

        The batch starts at the next live head within the (inclusive)
        ``until`` bound and extends through every live event at that same
        timestamp, ordered by ``(priority, seq)`` — exactly the order
        repeated :meth:`pop_next` calls would produce.  A batch never
        mixes timestamps and never crosses ``until``; ``limit`` caps the
        batch length, leaving the rest of the run for the next call.

        Cancelled entries encountered during the drain are discarded with
        the same live-count accounting as :meth:`pop_next`, including a
        cancelled head beyond the bound (the phantom-pending rule).
        Returns ``[]`` when nothing is due.

        ``into``, when given, is cleared and refilled instead of
        allocating a fresh list — the event loop calls this once per
        timestamp, and at modest tie density a per-call list allocation
        erases most of the batching win.
        """
        heap = self._heap
        if into is None:
            batch: List[Event] = []
        else:
            batch = into
            batch.clear()
        while heap:
            head = heap[0]
            if head[3].cancelled:
                heappop(heap)
                self._live -= 1
                continue
            if until is not None and head[0] > until:
                return batch
            break
        if not heap:
            return batch
        run_time = heap[0][0]
        while heap and heap[0][0] == run_time:
            if limit is not None and len(batch) >= limit:
                break
            event = heappop(heap)[3]
            self._live -= 1
            if event.cancelled:
                continue
            batch.append(event)
        return batch

    def peek_time(self) -> Optional[int]:
        """Return the virtual time of the next live event without popping it.

        Cancelled events discarded here must decrement the unpopped count
        exactly as :meth:`pop` does — otherwise ``len(heap)`` reports
        phantom events after a peek past a cancelled head, and callers
        like ``Simulator.run_until_idle`` see a non-zero ``pending()``
        with nothing left to run.
        """
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heappop(heap)
            self._live -= 1
        if not heap:
            return None
        return heap[0][0]
