"""The simulator event loop.

A :class:`Simulator` owns virtual time and the global event heap.  All
components (bus, processors, kernels, failure detector) schedule work
through it.  A complete run is a pure function of the initial schedule, so
re-running a configuration reproduces the exact same history — the property
the paper's rollforward recovery relies on and that our equivalence
experiments (E8) check end to end.
"""

from __future__ import annotations

from heapq import heappop
from typing import Callable, Optional

from .events import Event, EventHeap, SchedulingError, SimulationError
from .trace import TraceLog


class Simulator:
    """Deterministic discrete-event simulator with integer virtual time.

    One tick is interpreted as one microsecond throughout the library.

    ``now`` is a plain attribute, not a property: virtually every kernel
    and hardware path timestamps something against it (trace records,
    queue arrival times, cost accounting), and the descriptor call per
    read was measurable at benchmark event rates.  Only the event loop
    writes it.

    Example::

        sim = Simulator()
        sim.call_at(10, lambda: print("fires at t=10"))
        sim.run()
    """

    def __init__(self, trace: Optional[TraceLog] = None,
                 queue: Optional["EventHeap"] = None) -> None:
        #: Current virtual time in ticks.  Read-only by convention.
        self.now = 0
        #: The event-queue backend.  Anything satisfying the
        #: :class:`~repro.sim.queues.EventQueue` protocol works; the
        #: default binary heap is right for almost every workload (see
        #: docs/performance.md, "Choosing an event queue").
        self._heap = queue if queue is not None else EventHeap()
        self._running = False
        self._event_count = 0
        self.trace = trace if trace is not None else TraceLog()
        if type(self._heap) is EventHeap:
            # Shadow the method with a fused closure: call_after is the
            # single busiest entry point (one call per scheduled event)
            # and the generic path pays two call layers plus attribute
            # walks that a closure over the heap's internals avoids.
            # Pluggable backends keep the method, which routes through
            # their own push().
            self.call_after = self._make_fast_call_after()

    @property
    def events_executed(self) -> int:
        """Number of events executed so far (diagnostic; updated when a
        :meth:`run` call returns, not per event)."""
        return self._event_count

    def pending(self) -> int:
        """Number of live events still scheduled."""
        return len(self._heap)

    def call_at(self, time: int, action: Callable[[], None],
                priority: int = 0, label: str = "") -> Event:
        """Schedule ``action`` at absolute virtual ``time``."""
        if time < self.now:
            raise SchedulingError(
                f"cannot schedule in the past: now={self.now}, requested={time}")
        return self._heap.push(time, action, priority=priority, label=label)

    def call_after(self, delay: int, action: Callable[[], None],
                   priority: int = 0, label: str = "") -> Event:
        """Schedule ``action`` after ``delay`` ticks from now."""
        if delay < 0:
            raise SchedulingError(f"delay must be >= 0, got {delay}")
        # Skip call_at's in-the-past check: now + a non-negative delay can
        # never be in the past.  This path runs once per scheduled event.
        return self._heap.push(self.now + delay, action, priority=priority,
                               label=label)

    def _make_fast_call_after(self) -> Callable[..., Event]:
        """Build the fused :meth:`call_after` used with the default heap:
        :meth:`EventHeap.push` inlined into the scheduling call, with
        identical bounds, watch-flag and live-count semantics."""
        from heapq import heappush

        heap = self._heap
        entries = heap._heap

        def call_after(delay: int, action: Callable[[], None],
                       priority: int = 0, label: str = "") -> Event:
            if delay < 0:
                raise SchedulingError(f"delay must be >= 0, got {delay}")
            time = self.now + delay
            if time == heap.same_time_watch:
                heap.same_time_dirty = True
            seq = heap._seq
            heap._seq = seq + 1
            heap._live += 1
            event = Event(time, priority, seq, action, label)
            heappush(entries, (time, priority, seq, event, action))
            return event

        return call_after

    def run(self, until: Optional[int] = None,
            max_events: Optional[int] = None) -> int:
        """Run events until the heap drains, ``until`` is reached, or
        ``max_events`` events have executed.

        Returns the virtual time at which the run stopped.  When ``until``
        is given, the clock is advanced to ``until`` even if the heap
        drained earlier, so successive bounded runs compose naturally.

        The dispatch loop is the hottest code in the repository: every
        bus transfer, scheduler step, and sync in every experiment passes
        through it.  It dispatches in *batches* — one run of
        same-timestamp events at a time — so the bound checks and the
        clock write are paid once per timestamp rather than once per
        event.

        Two implementations share that structure:

        * For the default :class:`EventHeap` the run drain is inlined
          over the raw heap list, popping one entry at a time.  Events
          pushed *at the current tick* by an executing action simply land
          in the heap and are drained in ``(priority, seq)`` order with
          the rest of the run, so this path is order-identical to
          single-event dispatch by construction.
        * Pluggable backends (calendar, ladder — see
          :mod:`repro.sim.queues`) go through the generic
          :meth:`~repro.sim.events.EventHeap.pop_batch` protocol, which
          materialises the run up front.  There a same-tick push *would*
          reorder against the undispatched remainder, so the queue flags
          such pushes via ``same_time_watch`` / ``same_time_dirty`` and
          the loop reinserts the tail (original keys preserved) and
          re-pops, restoring the exact serial order.  No current
          component schedules at zero delay — every cost in
          :class:`~repro.config.CostModel` is at least one tick — so
          that fallback is a correctness net, not a hot path.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        executed = 0
        heap = self._heap
        try:
            if type(heap) is EventHeap:
                executed = self._run_heap_fast(heap, until, max_events)
            else:
                executed = self._run_generic(heap, until, max_events)
            if until is not None and self.now < until:
                self.now = until
            return self.now
        finally:
            heap.same_time_watch = -1
            self._event_count += executed
            self._running = False

    def _run_heap_fast(self, heap: EventHeap, until: Optional[int],
                       max_events: Optional[int]) -> int:
        """Batch dispatch inlined over the default heap's entry list.

        Operates on ``heap._heap`` directly with the same lazy-discard
        and live-count accounting as :meth:`EventHeap.pop_next`; the
        method-call layer per event was a measured fraction of dense
        workloads (see the P3 A/B benchmark).
        """
        executed = 0
        stop_at = max_events if max_events is not None else (1 << 62)
        entries = heap._heap
        while executed < stop_at:
            # Scan to the next live head, discarding cancelled entries
            # (including one beyond the bound: the phantom-pending rule).
            while entries:
                head = entries[0]
                if head[3].cancelled:
                    heappop(entries)
                    heap._live -= 1
                    continue
                break
            if not entries:
                break
            now = head[0]
            if until is not None and now > until:
                break
            self.now = now
            # Drain the whole run at this timestamp.  Same-tick pushes
            # from executing actions enter the heap and are drained here
            # in (priority, seq) order — exact serial-dispatch order.
            while entries and entries[0][0] == now:
                entry = heappop(entries)
                heap._live -= 1
                if entry[3].cancelled:
                    continue
                executed += 1
                entry[4]()
                if executed == stop_at:
                    break
        return executed

    def _run_generic(self, heap: "EventHeap", until: Optional[int],
                     max_events: Optional[int]) -> int:
        """Batch dispatch through the backend-neutral pop_batch protocol
        (any :class:`~repro.sim.queues.EventQueue` implementation)."""
        executed = 0
        pop_batch = heap.pop_batch
        reinsert = heap.reinsert
        buffer: list = []      # reused across batches; pop_batch refills it
        while True:
            if max_events is not None:
                remaining = max_events - executed
                if remaining <= 0:
                    break
                batch = pop_batch(until, remaining, buffer)
            else:
                batch = pop_batch(until, None, buffer)
            if not batch:
                break
            self.now = now = batch[0].time
            heap.same_time_watch = now
            heap.same_time_dirty = False
            index = 0
            size = len(batch)
            while index < size:
                event = batch[index]
                index += 1
                # A batch member cancelled by an earlier member's
                # action: skip it, exactly as the serial scan would
                # have discarded it before dispatch.
                if event.cancelled:
                    continue
                executed += 1
                event.action()
                if heap.same_time_dirty:
                    for later in batch[index:]:
                        if not later.cancelled:
                            reinsert(later)
                    break
        return executed

    def run_until_idle(self, max_events: int = 10_000_000) -> int:
        """Run until no events remain.  ``max_events`` guards against a
        component that reschedules itself forever (e.g. a poller); hitting
        the guard raises so bugs do not present as hangs."""
        self.run(max_events=max_events)
        if self.pending():
            raise SimulationError(
                f"simulation did not go idle within {max_events} events "
                f"({self.pending()} still pending)")
        return self.now
