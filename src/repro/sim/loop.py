"""The simulator event loop.

A :class:`Simulator` owns virtual time and the global event heap.  All
components (bus, processors, kernels, failure detector) schedule work
through it.  A complete run is a pure function of the initial schedule, so
re-running a configuration reproduces the exact same history — the property
the paper's rollforward recovery relies on and that our equivalence
experiments (E8) check end to end.
"""

from __future__ import annotations

from typing import Callable, Optional

from .events import Event, EventHeap, SchedulingError, SimulationError
from .trace import TraceLog


class Simulator:
    """Deterministic discrete-event simulator with integer virtual time.

    One tick is interpreted as one microsecond throughout the library.

    ``now`` is a plain attribute, not a property: virtually every kernel
    and hardware path timestamps something against it (trace records,
    queue arrival times, cost accounting), and the descriptor call per
    read was measurable at benchmark event rates.  Only the event loop
    writes it.

    Example::

        sim = Simulator()
        sim.call_at(10, lambda: print("fires at t=10"))
        sim.run()
    """

    def __init__(self, trace: Optional[TraceLog] = None) -> None:
        #: Current virtual time in ticks.  Read-only by convention.
        self.now = 0
        self._heap = EventHeap()
        self._running = False
        self._event_count = 0
        self.trace = trace if trace is not None else TraceLog()

    @property
    def events_executed(self) -> int:
        """Number of events executed so far (diagnostic; updated when a
        :meth:`run` call returns, not per event)."""
        return self._event_count

    def pending(self) -> int:
        """Number of live events still scheduled."""
        return len(self._heap)

    def call_at(self, time: int, action: Callable[[], None],
                priority: int = 0, label: str = "") -> Event:
        """Schedule ``action`` at absolute virtual ``time``."""
        if time < self.now:
            raise SchedulingError(
                f"cannot schedule in the past: now={self.now}, requested={time}")
        return self._heap.push(time, action, priority=priority, label=label)

    def call_after(self, delay: int, action: Callable[[], None],
                   priority: int = 0, label: str = "") -> Event:
        """Schedule ``action`` after ``delay`` ticks from now."""
        if delay < 0:
            raise SchedulingError(f"delay must be >= 0, got {delay}")
        # Skip call_at's in-the-past check: now + a non-negative delay can
        # never be in the past.  This path runs once per scheduled event.
        return self._heap.push(self.now + delay, action, priority=priority,
                               label=label)

    def run(self, until: Optional[int] = None,
            max_events: Optional[int] = None) -> int:
        """Run events until the heap drains, ``until`` is reached, or
        ``max_events`` events have executed.

        Returns the virtual time at which the run stopped.  When ``until``
        is given, the clock is advanced to ``until`` even if the heap
        drained earlier, so successive bounded runs compose naturally.

        The dispatch loop is the hottest code in the repository: every
        bus transfer, scheduler step, and sync in every experiment passes
        through it.  It routes through :meth:`EventHeap.pop_next` (one
        lazy-discard scan per event instead of a peek + pop pair) and
        hoists attribute lookups out of the loop.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        executed = 0
        pop_next = self._heap.pop_next
        try:
            if max_events is None:
                while True:
                    event = pop_next(until)
                    if event is None:
                        break
                    self.now = event.time
                    executed += 1
                    event.action()
            else:
                while executed < max_events:
                    event = pop_next(until)
                    if event is None:
                        break
                    self.now = event.time
                    executed += 1
                    event.action()
            if until is not None and self.now < until:
                self.now = until
            return self.now
        finally:
            self._event_count += executed
            self._running = False

    def run_until_idle(self, max_events: int = 10_000_000) -> int:
        """Run until no events remain.  ``max_events`` guards against a
        component that reschedules itself forever (e.g. a poller); hitting
        the guard raises so bugs do not present as hangs."""
        self.run(max_events=max_events)
        if self.pending():
            raise SimulationError(
                f"simulation did not go idle within {max_events} events "
                f"({self.pending()} still pending)")
        return self.now
