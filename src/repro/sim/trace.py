"""Structured trace log for simulation runs.

Every interesting transition (message transmitted, sync applied, cluster
crashed, backup promoted, ...) is appended as a :class:`TraceRecord`.  The
trace serves three purposes:

* debugging — a readable timeline of a run;
* tests — assertions about *how* an outcome was reached, not just the
  outcome (e.g. "exactly one bus transmission per three-destination
  message" in experiment E2);
* the equivalence experiment E8 — comparing externally visible event
  subsequences between failure-free and crashed-and-recovered runs.

Emit points sit on the hottest paths in the simulator, so the quiet case
must cost almost nothing: :attr:`TraceLog.active` is a precomputed
"anyone listening?" flag (recording enabled or at least one listener) and
:meth:`TraceLog.emit` returns immediately when it is false, before
building any record.  Listeners subscribe either to every record or to an
explicit set of categories; category subscriptions are dispatched through
a per-category index, so a fault-injection trigger armed on
``sync.primary`` never pays for the flood of ``bus.*`` records.
"""

from __future__ import annotations

from sys import intern
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence

Listener = Callable[["TraceRecord"], None]


class TraceRecord:
    """One timeline entry: what happened, when, and structured details.

    Slotted and category-interned: a fully traced run allocates one of
    these per emitted record, so the per-instance ``__dict__`` is
    dropped (``__slots__``) and the category string is shared process-
    wide (``sys.intern``) — every ``bus.transmit`` record points at the
    same string object, and category comparisons in :meth:`TraceLog.
    select`/:meth:`TraceLog.count` short-circuit on identity.  Records
    compare by value and are mutated nowhere (treat them as frozen).
    """

    __slots__ = ("time", "category", "detail")

    def __init__(self, time: int, category: str,
                 detail: Optional[Dict[str, Any]] = None) -> None:
        self.time = time
        self.category = intern(category)
        self.detail = {} if detail is None else detail

    def __repr__(self) -> str:
        return (f"TraceRecord(time={self.time!r}, "
                f"category={self.category!r}, detail={self.detail!r})")

    def __eq__(self, other: object) -> Any:
        if not isinstance(other, TraceRecord):
            return NotImplemented
        return (self.time == other.time
                and self.category == other.category
                and self.detail == other.detail)

    def format(self) -> str:
        """Render the record as a single human-readable line."""
        parts = " ".join(f"{key}={value!r}" for key, value in self.detail.items())
        return f"[{self.time:>12}] {self.category:<24} {parts}"


class TraceLog:
    """An append-only, filterable log of :class:`TraceRecord` entries.

    Tracing can be disabled wholesale (``enabled=False``) for benchmark runs
    where the record objects themselves would dominate cost; counters in
    :mod:`repro.metrics` stay live regardless.
    """

    def __init__(self, enabled: bool = True,
                 categories: Optional[List[str]] = None) -> None:
        self._enabled = enabled
        self._only = set(categories) if categories is not None else None
        self._records: List[TraceRecord] = []
        self._listeners: List[Listener] = []
        self._by_category: Dict[str, List[Listener]] = {}
        #: True when :meth:`emit` has any work to do (recording on, or at
        #: least one listener).  Hot call sites may read this to skip
        #: building expensive detail values; ``emit`` checks it first
        #: regardless.  Maintained internally — do not assign to it.
        self.active = enabled
        #: Dispatch depth: >0 while listener callbacks run, so listener
        #: (un)subscriptions from inside a callback can be deferred
        #: instead of copying the listener list on every emit.
        self._dispatching = 0
        self._deferred: List = []

    @property
    def enabled(self) -> bool:
        """Whether records are stored (listeners fire regardless)."""
        return self._enabled

    @enabled.setter
    def enabled(self, value: bool) -> None:
        self._enabled = value
        self._refresh_active()

    def _refresh_active(self) -> None:
        self.active = bool(self._enabled or self._listeners
                           or self._by_category)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def subscribe(self, listener: Listener,
                  categories: Optional[Sequence[str]] = None) -> None:
        """Register a callback invoked synchronously for emitted records,
        regardless of the ``enabled`` flag or storage category filter.

        With ``categories=None`` the listener observes *every* record.
        With an explicit category list it observes only those categories,
        via a per-category index — the cheap option for triggers that
        care about one transition kind on a machine emitting thousands.

        This is the hook semantic fault-injection triggers attach to
        (:mod:`repro.faults`): emit points mark the interesting
        transitions — "Nth sync of pid", "first transmission from cluster
        C", "a recovery began" — so a listener can act on them without
        the components knowing about fault injection.  Listeners must be
        deterministic; anything they schedule goes through the simulator
        and keeps the run reproducible.

        Subscribing from inside a listener callback takes effect after
        the current record finishes dispatching.
        """
        if self._dispatching:
            self._deferred.append((self.subscribe, listener, categories))
            return
        if categories is None:
            self._listeners.append(listener)
        else:
            for category in categories:
                self._by_category.setdefault(category, []).append(listener)
        self._refresh_active()

    def unsubscribe(self, listener: Listener) -> None:
        """Remove a previously subscribed listener from the wildcard list
        and every category index (no-op if absent).  Unsubscribing from
        inside a listener callback takes effect after the current record
        finishes dispatching (the in-flight dispatch still completes)."""
        if self._dispatching:
            self._deferred.append((self.unsubscribe, listener, None))
            return
        if listener in self._listeners:
            self._listeners.remove(listener)
        for category, listeners in list(self._by_category.items()):
            if listener in listeners:
                listeners.remove(listener)
            if not listeners:
                del self._by_category[category]
        self._refresh_active()

    def emit(self, time: int, category: str, **detail: Any) -> None:
        """Append one record (no-op when disabled or filtered out).

        Subscribed listeners observe the record even when recording is
        disabled or the category is filtered out of storage.
        """
        if not self.active:
            return
        record = TraceRecord(time, category, detail)
        if self._enabled and (self._only is None or category in self._only):
            self._records.append(record)
        listeners = self._listeners
        scoped = self._by_category.get(category)
        if not listeners and not scoped:
            return
        self._dispatching += 1
        try:
            for listener in listeners:
                listener(record)
            if scoped:
                for listener in scoped:
                    listener(record)
        finally:
            self._dispatching -= 1
            if self._deferred and not self._dispatching:
                deferred, self._deferred = self._deferred, []
                for method, listener, categories in deferred:
                    if method is self.subscribe:
                        method(listener, categories)
                    else:
                        method(listener)

    def select(self, category: Optional[str] = None,
               where: Optional[Callable[[TraceRecord], bool]] = None
               ) -> List[TraceRecord]:
        """Return records matching ``category`` and/or predicate ``where``."""
        result = []
        for record in self._records:
            if category is not None and record.category != category:
                continue
            if where is not None and not where(record):
                continue
            result.append(record)
        return result

    def count(self, category: str) -> int:
        """Number of records in ``category``."""
        return sum(1 for record in self._records if record.category == category)

    def dump(self, limit: Optional[int] = None) -> str:
        """Render the (optionally truncated) trace as text."""
        records = self._records if limit is None else self._records[:limit]
        lines = [record.format() for record in records]
        if limit is not None and len(self._records) > limit:
            lines.append(f"... {len(self._records) - limit} more records")
        return "\n".join(lines)

    def tail(self, count: int) -> List[str]:
        """The last ``count`` records as formatted lines (failure reports
        show the end of a diverged run's timeline)."""
        return [record.format() for record in self._records[-count:]]

    def clear(self) -> None:
        """Drop all records (keeps enabled/filter settings)."""
        self._records.clear()
