"""Structured trace log for simulation runs.

Every interesting transition (message transmitted, sync applied, cluster
crashed, backup promoted, ...) is appended as a :class:`TraceRecord`.  The
trace serves three purposes:

* debugging — a readable timeline of a run;
* tests — assertions about *how* an outcome was reached, not just the
  outcome (e.g. "exactly one bus transmission per three-destination
  message" in experiment E2);
* the equivalence experiment E8 — comparing externally visible event
  subsequences between failure-free and crashed-and-recovered runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One timeline entry: what happened, when, and structured details."""

    time: int
    category: str
    detail: Dict[str, Any] = field(default_factory=dict)

    def format(self) -> str:
        """Render the record as a single human-readable line."""
        parts = " ".join(f"{key}={value!r}" for key, value in self.detail.items())
        return f"[{self.time:>12}] {self.category:<24} {parts}"


class TraceLog:
    """An append-only, filterable log of :class:`TraceRecord` entries.

    Tracing can be disabled wholesale (``enabled=False``) for benchmark runs
    where the record objects themselves would dominate cost; counters in
    :mod:`repro.metrics` stay live regardless.
    """

    def __init__(self, enabled: bool = True,
                 categories: Optional[List[str]] = None) -> None:
        self.enabled = enabled
        self._only = set(categories) if categories is not None else None
        self._records: List[TraceRecord] = []
        self._listeners: List[Callable[[TraceRecord], None]] = []

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def subscribe(self, listener: Callable[[TraceRecord], None]) -> None:
        """Register a callback invoked synchronously for *every* emitted
        record, regardless of the ``enabled`` flag or category filter.

        This is the hook semantic fault-injection triggers attach to
        (:mod:`repro.faults`): emit points mark the interesting
        transitions — "Nth sync of pid", "first transmission from cluster
        C", "a recovery began" — so a listener can act on them without
        the components knowing about fault injection.  Listeners must be
        deterministic; anything they schedule goes through the simulator
        and keeps the run reproducible.
        """
        self._listeners.append(listener)

    def unsubscribe(self, listener: Callable[[TraceRecord], None]) -> None:
        """Remove a previously subscribed listener (no-op if absent)."""
        if listener in self._listeners:
            self._listeners.remove(listener)

    def emit(self, time: int, category: str, **detail: Any) -> None:
        """Append one record (no-op when disabled or filtered out).

        Subscribed listeners observe the record even when recording is
        disabled or the category is filtered out of storage.
        """
        if not self.enabled and not self._listeners:
            return
        record = TraceRecord(time=time, category=category, detail=detail)
        if self.enabled and (self._only is None or category in self._only):
            self._records.append(record)
        for listener in list(self._listeners):
            listener(record)

    def select(self, category: Optional[str] = None,
               where: Optional[Callable[[TraceRecord], bool]] = None
               ) -> List[TraceRecord]:
        """Return records matching ``category`` and/or predicate ``where``."""
        result = []
        for record in self._records:
            if category is not None and record.category != category:
                continue
            if where is not None and not where(record):
                continue
            result.append(record)
        return result

    def count(self, category: str) -> int:
        """Number of records in ``category``."""
        return sum(1 for record in self._records if record.category == category)

    def dump(self, limit: Optional[int] = None) -> str:
        """Render the (optionally truncated) trace as text."""
        records = self._records if limit is None else self._records[:limit]
        lines = [record.format() for record in records]
        if limit is not None and len(self._records) > limit:
            lines.append(f"... {len(self._records) - limit} more records")
        return "\n".join(lines)

    def tail(self, count: int) -> List[str]:
        """The last ``count`` records as formatted lines (failure reports
        show the end of a diverged run's timeline)."""
        return [record.format() for record in self._records[-count:]]

    def clear(self) -> None:
        """Drop all records (keeps enabled/filter settings)."""
        self._records.clear()
