"""Per-cluster Auros kernels: PCBs, scheduling, delivery, syscalls."""

from .directory import Directory, DirectoryError, ServerInfo
from .kernel import ClusterKernel, KernelError
from .nondet import NondetBuffer, NondetSavedLog
from .pcb import (BackupRecord, BirthNotice, BlockInfo, ProcState,
                  ProcessControlBlock)
from .scheduler import Scheduler, SchedulerError

__all__ = [
    "Directory",
    "DirectoryError",
    "ServerInfo",
    "ClusterKernel",
    "KernelError",
    "NondetBuffer",
    "NondetSavedLog",
    "BackupRecord",
    "BirthNotice",
    "BlockInfo",
    "ProcState",
    "ProcessControlBlock",
    "Scheduler",
    "SchedulerError",
]
