"""Well-known server placement and deterministic placement policy.

The paper's process server tracks where every process lives; bootstrapping,
however, needs *some* statically known facts (in real Auros: boot-time
configuration).  The :class:`Directory` models that replicated boot
configuration: where the well-known servers (file / process / page / tty)
start out, which cluster backs up which, and where fullback re-creation
places new backups.  All decisions are pure functions of (configuration,
liveness set), so every cluster computes identical answers — the property
that lets us share one object among kernels without hiding real
coordination.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..types import ClusterId, Pid


class DirectoryError(Exception):
    """Raised when placement is impossible (e.g. no live cluster left)."""


@dataclass
class ServerInfo:
    """Location of a well-known server process."""

    name: str
    pid: Pid
    primary_cluster: ClusterId
    backup_cluster: Optional[ClusterId]


@dataclass
class Directory:
    """Replicated placement knowledge."""

    n_clusters: int
    servers: Dict[str, ServerInfo] = field(default_factory=dict)
    dead_clusters: Set[ClusterId] = field(default_factory=set)

    def register_server(self, name: str, pid: Pid,
                        primary_cluster: ClusterId,
                        backup_cluster: Optional[ClusterId]) -> ServerInfo:
        info = ServerInfo(name=name, pid=pid,
                          primary_cluster=primary_cluster,
                          backup_cluster=backup_cluster)
        self.servers[name] = info
        return info

    def server(self, name: str) -> ServerInfo:
        info = self.servers.get(name)
        if info is None:
            raise DirectoryError(f"no server registered under {name!r}")
        return info

    # -- liveness ------------------------------------------------------------

    def live_clusters(self) -> List[ClusterId]:
        return [c for c in range(self.n_clusters)
                if c not in self.dead_clusters]

    def mark_dead(self, cluster_id: ClusterId) -> None:
        """Record a crash and fail any server over to its backup.

        Idempotent: every surviving cluster's detector calls this.
        """
        if cluster_id in self.dead_clusters:
            return
        self.dead_clusters.add(cluster_id)
        for info in self.servers.values():
            if info.primary_cluster == cluster_id:
                if info.backup_cluster is None or \
                        info.backup_cluster in self.dead_clusters:
                    # Both homes gone: a genuine double failure.  Degrade
                    # rather than crash the survivors — lookups of this
                    # server will fail until an operator intervenes.
                    info.primary_cluster = None
                    info.backup_cluster = None
                    continue
                info.primary_cluster = info.backup_cluster
                info.backup_cluster = None
            elif info.backup_cluster == cluster_id:
                info.backup_cluster = None

    def mark_restored(self, cluster_id: ClusterId) -> None:
        self.dead_clusters.discard(cluster_id)

    # -- placement policy -------------------------------------------------------

    def default_backup_cluster(self, home: ClusterId) -> ClusterId:
        """Where a process created in ``home`` keeps its backup: the next
        live cluster by index (wrapping)."""
        for offset in range(1, self.n_clusters):
            candidate = (home + offset) % self.n_clusters
            if candidate not in self.dead_clusters:
                return candidate
        raise DirectoryError("no live cluster available for a backup")

    def fullback_backup_cluster(self, new_home: ClusterId,
                                crashed: ClusterId) -> ClusterId:
        """Placement for a fullback's re-created backup: the next live
        cluster that is neither the new primary's cluster nor the crashed
        one (a fullback system needs >= 3 clusters, section 7.3)."""
        for offset in range(1, self.n_clusters):
            candidate = (new_home + offset) % self.n_clusters
            if candidate in self.dead_clusters:
                continue
            if candidate in (new_home, crashed):
                continue
            return candidate
        raise DirectoryError(
            "fullback backup re-creation needs a third live cluster")
