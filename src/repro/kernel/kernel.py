"""The per-cluster Auros kernel.

Each cluster runs an independent kernel copy (section 7.2): it schedules
local processes, owns the cluster's routing table, performs message
delivery on the executive processor, triggers and applies syncs, and
cooperates with the recovery machinery.  Kernels are **not** synchronized
with one another — no backup may ever depend on kernel-local state, which
is why everything a backup needs travels in messages (sync payloads,
birth notices, saved queues).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Set, Tuple, Type

from ..backup.modes import BackupMode
from ..config import MachineConfig
from ..hardware.cluster import Cluster
from ..messages.message import (Delivery, DeliveryRole, Message, MessageKind,
                                QueuedMessage)
from ..messages.payloads import (EOFMarker, ExitNotice, OpenReply,
                                 PageAccountOp, PageIn, PageOut, PageReply,
                                 SignalPayload)
from ..messages.routing import (EntryStatus, PeerKind, RoutingEntry,
                                RoutingTable)
from ..metrics import MetricSet
from ..paging import AddressSpace, MemoryTxn
from ..programs.program import Program
from ..sim import Simulator, TraceLog
from ..types import ChannelId, ClusterId, Fd, ID_SPACE, Pid, Ticks
from .directory import Directory
from .nondet import NondetBuffer, NondetSavedLog
from .pcb import (BackupRecord, BirthNotice, BlockInfo, ProcState,
                  ProcessControlBlock)


class KernelError(Exception):
    """Raised on kernel protocol violations (bad fd, unknown pid, ...)."""


#: Sentinel: let the directory's placement policy choose a backup cluster.
AUTO_BACKUP = "auto"


#: Handler signature for pluggable privileged actions (registered by the
#: servers package): (kernel, pcb, action) -> (cost_ticks, result).
ActionHandler = Callable[["ClusterKernel", ProcessControlBlock, Any],
                         Tuple[Ticks, Any]]


class ClusterKernel:
    """Kernel instance for one cluster."""

    def __init__(self, cluster: Cluster, config: MachineConfig,
                 directory: Directory, sim: Simulator, metrics: MetricSet,
                 trace: TraceLog) -> None:
        from .scheduler import Scheduler  # local import: mutual reference

        self.cluster = cluster
        self.cluster_id = cluster.cluster_id
        self.config = config
        self.directory = directory
        self.sim = sim
        self.metrics = metrics
        self.trace = trace
        self.routing = RoutingTable(self.cluster_id)
        #: Hot-path aliases over stable internals (the routing dict and
        #: the metric stores are created once and mutated in place): the
        #: method-call layer per delivery leg and per consumed message was
        #: measurable at benchmark event rates.
        self._route_get = self.routing._entries.get
        self._mcounters = metrics._counters
        self._record_hist = metrics.record_hist
        self.pcbs: Dict[Pid, ProcessControlBlock] = {}
        self.backups: Dict[Pid, BackupRecord] = {}
        self.birth_notices: Dict[Pid, BirthNotice] = {}
        self.birth_home: Dict[Pid, ClusterId] = {}
        self.birth_is_server: Dict[Pid, bool] = {}
        self._birth_by_fork: Dict[Tuple[Pid, int], BirthNotice] = {}
        self.nondet_saved = NondetSavedLog()
        self.nondet_buffers: Dict[Pid, NondetBuffer] = {}
        self.scheduler = Scheduler(self)
        self.alive = True
        self.crash_handling = False
        self.known_dead: Set[ClusterId] = set()
        #: Messages held because their destination is a fullback awaiting a
        #: new backup (7.10.1 step 4).
        self.held_for_pid: Dict[Pid, List[Message]] = {}
        #: Fullbacks promoted here, not runnable until BACKUP_READY.
        self.awaiting_backup_ready: Set[Pid] = set()
        #: Outstanding page-in requests (re-issued if the page server moves).
        self.pending_page_ins: Dict[Tuple[Pid, int], bool] = {}
        #: Individually failed processes that relocated to their backup
        #: cluster (section 10 extension): pid -> (cluster, backup).
        self.moved_pids: Dict[Pid, Tuple[Optional[ClusterId],
                                         Optional[ClusterId]]] = {}
        #: Pluggable privileged actions (disk ops, server sync, ...).
        self.action_handlers: Dict[Type, ActionHandler] = {}
        #: Hooks installed by the machine / recovery coordinator.
        self.on_exit: Optional[Callable[[Pid, int, ClusterId], None]] = None
        self.on_promote: Optional[Callable[[ProcessControlBlock], None]] = None
        #: Unrecoverable hardware fault (e.g. both disk drives dead): the
        #: machine converts it into a clean whole-cluster crash.
        self.on_fatal: Optional[Callable[[ClusterId, str], None]] = None
        self.server_registry: Dict[Pid, Any] = {}   # pid -> server harness
        #: The machine's resilience service layer (repro.resilience),
        #: installed post-construction like the bus fault layer; None when
        #: every service is disabled so no hook below fires.
        self.resilience = None
        self._next_pid = 1
        self._next_chan = 1
        self._next_msg = 1
        cluster.kernel = self

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------

    def alloc_pid(self) -> Pid:
        pid = self.cluster_id * ID_SPACE + self._next_pid
        self._next_pid += 1
        return pid

    def alloc_channel_id(self) -> ChannelId:
        chan = self.cluster_id * ID_SPACE + self._next_chan
        self._next_chan += 1
        return chan

    def next_msg_id(self) -> int:
        msg_id = self.cluster_id * ID_SPACE + self._next_msg
        self._next_msg += 1
        return msg_id

    # ------------------------------------------------------------------
    # process lifecycle
    # ------------------------------------------------------------------

    def create_process(self, program: Program, backup_mode: BackupMode,
                       *, parent: Optional[Pid] = None,
                       family_head: Optional[Pid] = None,
                       fixed_pid: Optional[Pid] = None,
                       fixed_channels: Optional[Dict[str, ChannelId]] = None,
                       is_server: bool = False,
                       backup_cluster: Any = AUTO_BACKUP,
                       notify_backup: bool = True,
                       adopt_existing_entries: bool = False,
                       sync_reads_threshold: Optional[int] = None,
                       sync_time_threshold: Optional[Ticks] = None,
                       make_ready: bool = True) -> ProcessControlBlock:
        """Create a primary process in this cluster.

        ``fixed_pid`` / ``fixed_channels`` are supplied when recovery
        re-forks a child from a birth notice, so identities match the lost
        primary.  ``adopt_existing_entries`` flips pre-existing backup
        routing entries (with their saved queues) into primary entries
        instead of creating fresh ones — the restart-from-initial-state
        recovery path.
        """
        pid = fixed_pid if fixed_pid is not None else self.alloc_pid()
        if pid in self.pcbs:
            raise KernelError(f"pid {pid} already exists in cluster "
                              f"{self.cluster_id}")
        space = AddressSpace(self.config.words_per_page)
        program.declare(space)
        space.make_fully_resident()
        if backup_cluster == AUTO_BACKUP:
            if backup_mode is None:
                backup_cluster = None  # unprotected (baseline mode)
            else:
                backup_cluster = self.directory.default_backup_cluster(
                    self.cluster_id)
        pcb = ProcessControlBlock(
            pid=pid, program=program, cluster_id=self.cluster_id,
            backup_cluster=backup_cluster, backup_mode=backup_mode,
            family_head=family_head if family_head is not None else pid,
            parent=parent, space=space, is_server=is_server,
            sync_reads_threshold=(sync_reads_threshold
                                  if sync_reads_threshold is not None
                                  else self.config.sync_reads_threshold),
            sync_time_threshold=(sync_time_threshold
                                 if sync_time_threshold is not None
                                 else self.config.sync_time_threshold),
        )
        # Step-0 transaction: program initial state.
        txn = MemoryTxn(space)
        program.init(txn, pcb.regs)
        txn.commit()

        channels = fixed_channels or {}
        self._create_wellknown_channels(pcb, channels, adopt_existing_entries)
        self.pcbs[pid] = pcb
        self.nondet_buffers[pid] = NondetBuffer()
        self.metrics.incr("proc.created")
        self.trace.emit(self.sim.now, "proc.create", pid=pid,
                        cluster=self.cluster_id, program=program.name,
                        mode=backup_mode.value if backup_mode else None)
        if notify_backup and backup_cluster is not None:
            self._send_birth_notice(pcb, fork_index=-1, create_record=True)
        if make_ready:
            self.scheduler.make_ready(pcb)
        return pcb

    def _create_wellknown_channels(self, pcb: ProcessControlBlock,
                                   fixed: Dict[str, ChannelId],
                                   adopt: bool) -> None:
        """Give a new process its born-with channels: the signal channel,
        file-server channel, process-server channel and page channel."""
        def make(kind: str, server_name: Optional[str],
                 kernel_internal: bool = False) -> ChannelId:
            chan = fixed.get(kind)
            if chan is None:
                chan = self.alloc_channel_id()
            existing = self.routing.get(chan, pcb.pid)
            if existing is not None and adopt:
                existing.is_backup = False
                return chan
            if server_name is not None:
                info = self.directory.server(server_name)
                entry = RoutingEntry(
                    channel_id=chan, owner_pid=pcb.pid, is_backup=False,
                    peer_pid=info.pid, peer_cluster=info.primary_cluster,
                    peer_backup_cluster=info.backup_cluster,
                    peer_kind=PeerKind.SERVER,
                    kernel_internal=kernel_internal)
            else:
                entry = RoutingEntry(
                    channel_id=chan, owner_pid=pcb.pid, is_backup=False,
                    peer_pid=None, peer_cluster=None,
                    peer_backup_cluster=None, peer_kind=PeerKind.SERVER)
            self.routing.ensure(entry)
            return chan

        pcb.signal_channel = make("signal", None)
        fs_chan = make("fs", "fs")
        pcb.fs_channel_fd = pcb.alloc_fd(fs_chan)
        self.routing.require(fs_chan, pcb.pid).fd = pcb.fs_channel_fd
        ps_chan = make("ps", "proc")
        pcb.ps_channel_fd = pcb.alloc_fd(ps_chan)
        self.routing.require(ps_chan, pcb.pid).fd = pcb.ps_channel_fd
        pcb.page_channel = make("page", "page", kernel_internal=True)

    def wellknown_channel_map(self, pcb: ProcessControlBlock
                              ) -> Dict[str, ChannelId]:
        return {
            "signal": pcb.signal_channel,
            "fs": pcb.fds[pcb.fs_channel_fd],
            "ps": pcb.fds[pcb.ps_channel_fd],
            "page": pcb.page_channel,
        }

    def _send_birth_notice(self, pcb: ProcessControlBlock, fork_index: int,
                           create_record: bool) -> None:
        notice = BirthNotice(
            child_pid=pcb.pid, parent_pid=pcb.parent if pcb.parent else -1,
            family_head=pcb.family_head, program=pcb.program,
            backup_mode=pcb.backup_mode,
            channels=[(chan, kind) for kind, chan in
                      self.wellknown_channel_map(pcb).items()],
        )
        payload = {
            "notice": notice, "fork_index": fork_index,
            "create_record": create_record,
            "home_cluster": self.cluster_id,
            "is_server": pcb.is_server,
            "sync_reads_threshold": pcb.sync_reads_threshold,
            "sync_time_threshold": pcb.sync_time_threshold,
        }
        self.send_kernel_message(
            MessageKind.BIRTH_NOTICE, payload,
            (Delivery(pcb.backup_cluster, DeliveryRole.KERNEL, pcb.pid),),
            size=64)

    def fork_child(self, parent: ProcessControlBlock,
                   program: Program) -> Pid:
        """Fork: create a child in this cluster, family backup cluster.

        During recovery the re-executed fork consults stored birth notices
        (section 7.10.2): if the child already exists (it was promoted
        independently) the fork is skipped; otherwise the notice supplies
        the original pid and channel ids.
        """
        fork_index = parent.fork_count
        parent.fork_count += 1
        notice = self._birth_by_fork.get((parent.pid, fork_index))
        if parent.recovering and notice is not None:
            if notice.child_pid in self.pcbs:
                # Child was independently promoted; nothing to create.
                self.metrics.incr("recovery.forks_skipped")
                return notice.child_pid
            fixed_channels = {kind: chan for chan, kind in notice.channels}
            child = self.create_process(
                notice.program, notice.backup_mode,
                parent=parent.pid, family_head=parent.family_head,
                fixed_pid=notice.child_pid, fixed_channels=fixed_channels,
                backup_cluster=parent.backup_cluster,
                notify_backup=False, adopt_existing_entries=True)
            child.recovering = True
            self.metrics.incr("recovery.forks_replayed")
        else:
            child = self.create_process(
                program, parent.backup_mode, parent=parent.pid,
                family_head=parent.family_head,
                backup_cluster=parent.backup_cluster,
                notify_backup=False)
            if parent.backup_cluster is not None:
                self._send_birth_notice(child, fork_index=fork_index,
                                        create_record=False)
        if parent.backup_cluster is not None:
            parent.children_without_backup.add(child.pid)
        self.metrics.incr("proc.forks")
        return child.pid

    def exit_process(self, pcb: ProcessControlBlock, code: int) -> None:
        """Clean process exit: EOF markers to user peers, backup teardown,
        page account drop."""
        pcb.exit_code = code
        pcb.state = ProcState.EXITED
        # An exiting parent can no longer re-fork lost children during
        # recovery, so children without backups must sync and become
        # independently recoverable (the section 7.7 forced-sync rule,
        # applied at the last point the parent can enforce it).
        for child_pid in list(pcb.children_without_backup):
            child = self.pcbs.get(child_pid)
            if child is not None and not child.has_backup_process:
                child.sync_forced = True
        for entry in self.routing.entries_for_pid(pcb.pid):
            if entry.is_backup or entry.status is not EntryStatus.OPEN:
                continue
            if entry.peer_kind is PeerKind.USER and entry.peer_pid is not None:
                self.send_user_message(pcb, entry, EOFMarker(pcb.pid),
                                       size=16)
            entry.status = EntryStatus.CLOSED
        if pcb.backup_cluster is not None:
            self.send_kernel_message(
                MessageKind.CRASH_NOTICE,
                ExitNotice(pid=pcb.pid, code=code),
                (Delivery(pcb.backup_cluster, DeliveryRole.KERNEL, pcb.pid),),
                size=16)
        self._send_page_channel(pcb, PageAccountOp(op="drop", pid=pcb.pid))
        for entry in self.routing.entries_for_pid(pcb.pid):
            self.routing.remove(entry.channel_id, pcb.pid)
        del self.pcbs[pcb.pid]
        self.nondet_buffers.pop(pcb.pid, None)
        local_parent = self.pcbs.get(pcb.parent) if pcb.parent else None
        if local_parent is not None:
            local_parent.children_without_backup.discard(pcb.pid)
        self.metrics.incr("proc.exited")
        self.trace.emit(self.sim.now, "proc.exit", pid=pcb.pid, code=code,
                        cluster=self.cluster_id)
        if self.on_exit is not None:
            self.on_exit(pcb.pid, code, self.cluster_id)

    def halt(self) -> None:
        """The cluster crashed: freeze everything."""
        self.alive = False

    def fatal_hardware(self, reason: str) -> None:
        """Unrecoverable hardware under this kernel (both drives of a
        mirrored disk dead, say): record it and hand the cluster to the
        machine's fatal hook, which crashes it cleanly so the failure
        travels the ordinary detector path."""
        if not self.alive:
            return
        self.metrics.incr("kernel.fatal_hardware")
        self.trace.emit(self.sim.now, "kernel.fatal",
                        cluster=self.cluster_id, reason=reason)
        if self.on_fatal is not None:
            self.on_fatal(self.cluster_id, reason)
        else:
            self.halt()

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------

    def send_user_message(self, pcb: ProcessControlBlock,
                          entry: RoutingEntry, payload: Any,
                          size: Optional[int] = None,
                          kind: MessageKind = MessageKind.DATA) -> bool:
        """Send on a channel with full three-way routing (5.1).

        Returns ``False`` when the send was *suppressed*: the process is
        rolling forward and the entry's writes-since-sync count shows the
        lost primary already sent this message (5.4).
        """
        if entry.writes_since_sync > 0 \
                and not self.config.ablate_send_suppression:
            entry.writes_since_sync -= 1
            self.metrics.incr("recovery.sends_suppressed")
            self.trace.emit(self.sim.now, "recovery.suppress",
                            pid=pcb.pid, chan=entry.channel_id)
            return False
        if entry.status is EntryStatus.UNUSABLE:
            # Destination is a fullback awaiting its new backup: hold.
            message = self._build_channel_message(pcb, entry, payload, size,
                                                  kind)
            self.held_for_pid.setdefault(entry.peer_pid, []).append(message)
            self.metrics.incr("recovery.messages_held")
            return True
        if entry.peer_cluster is None:
            # The peer died without a surviving backup (a quarterback
            # casualty): there is nowhere to deliver.  Drop rather than
            # fault the sender — the transport-level analogue of writing
            # to a vanished correspondent.
            self.metrics.incr("msg.dropped_peer_gone")
            self.trace.emit(self.sim.now, "msg.peer_gone", pid=pcb.pid,
                            chan=entry.channel_id)
            return True
        if self.resilience is not None \
                and not self.resilience.allow_send(self, pcb, entry,
                                                   payload, size, kind):
            # An open circuit breaker consumed the send (diverted to the
            # dead-letter queue or dropped with accounting).
            return True
        message = self._build_channel_message(pcb, entry, payload, size, kind)
        entry.changed_since_sync = True
        self.cluster.send(message)
        self._mcounters["msg.sent"] += 1
        return True

    def _build_channel_message(self, pcb: ProcessControlBlock,
                               entry: RoutingEntry, payload: Any,
                               size: Optional[int],
                               kind: MessageKind) -> Message:
        if entry.peer_cluster is None or entry.peer_pid is None:
            raise KernelError(
                f"channel {entry.channel_id} has no routable peer")
        deliveries: List[Delivery] = [
            Delivery(entry.peer_cluster, DeliveryRole.PRIMARY_DEST,
                     entry.peer_pid, entry.channel_id)]
        if entry.peer_backup_cluster is not None:
            deliveries.append(
                Delivery(entry.peer_backup_cluster, DeliveryRole.DEST_BACKUP,
                         entry.peer_pid, entry.channel_id))
        nondet: Tuple[Any, ...] = ()
        if pcb.backup_cluster is not None and not entry.kernel_internal:
            deliveries.append(
                Delivery(pcb.backup_cluster, DeliveryRole.SENDER_BACKUP,
                         pcb.pid, entry.channel_id))
            buffer = self.nondet_buffers.get(pcb.pid)
            if buffer is not None:
                nondet = buffer.take_for_piggyback()
        msg_id = self.cluster_id * ID_SPACE + self._next_msg
        self._next_msg += 1
        return Message(
            msg_id, kind, pcb.pid, entry.peer_pid,
            entry.channel_id, payload,
            (size if size is not None
             else self.config.default_message_bytes),
            tuple(deliveries), self.cluster_id, pcb.backup_cluster, nondet)

    def _send_page_channel(self, pcb: ProcessControlBlock,
                           payload: Any, size: int = 32) -> None:
        """Kernel-generated page traffic: to the page server primary plus a
        saved copy at its backup; never counted at the sender's backup
        (page traffic is regenerated, not replayed — see DESIGN.md)."""
        info = self.directory.server("page")
        deliveries = [Delivery(info.primary_cluster,
                               DeliveryRole.PRIMARY_DEST, info.pid,
                               pcb.page_channel)]
        if info.backup_cluster is not None:
            deliveries.append(Delivery(info.backup_cluster,
                                       DeliveryRole.DEST_BACKUP, info.pid,
                                       pcb.page_channel))
        message = Message(
            msg_id=self.next_msg_id(), kind=MessageKind.DATA,
            src_pid=pcb.pid, dst_pid=info.pid, channel_id=pcb.page_channel,
            payload=payload, size_bytes=size, deliveries=tuple(deliveries),
            src_cluster=self.cluster_id, src_backup_cluster=None)
        self.cluster.send(message)

    def send_page_out(self, pcb: ProcessControlBlock, page_no: int,
                      data: Any, sync_seq: int) -> None:
        self._send_page_channel(
            pcb, PageOut(pid=pcb.pid, page_no=page_no, data=data,
                         sync_seq=sync_seq),
            size=self.config.page_size)
        self.metrics.incr("paging.pages_shipped")

    def send_kernel_message(self, kind: MessageKind, payload: Any,
                            deliveries: Tuple[Delivery, ...],
                            size: int = 64,
                            src_pid: Optional[Pid] = None,
                            src_backup_cluster: Optional[ClusterId] = None,
                            channel_id: Optional[ChannelId] = None) -> None:
        message = Message(
            msg_id=self.next_msg_id(), kind=kind, src_pid=src_pid,
            dst_pid=None, channel_id=channel_id, payload=payload,
            size_bytes=size, deliveries=deliveries,
            src_cluster=self.cluster_id,
            src_backup_cluster=src_backup_cluster)
        self.cluster.send(message)

    def release_held_messages(self, pid: Pid,
                              backup_cluster: ClusterId) -> None:
        """BACKUP_READY arrived for ``pid``: re-address and send held
        messages, now with the new backup's DEST_BACKUP leg."""
        held = self.held_for_pid.pop(pid, None)
        if not held:
            return
        for message in held:
            entry = None
            if message.channel_id is not None and message.src_pid is not None:
                entry = self.routing.get(message.channel_id, message.src_pid)
            if entry is None or entry.peer_cluster is None:
                continue
            deliveries = [Delivery(entry.peer_cluster,
                                   DeliveryRole.PRIMARY_DEST, pid,
                                   message.channel_id),
                          Delivery(backup_cluster, DeliveryRole.DEST_BACKUP,
                                   pid, message.channel_id)]
            for leg in message.deliveries:
                if leg.role is DeliveryRole.SENDER_BACKUP:
                    deliveries.append(leg)
            self.cluster.send(Message(
                msg_id=message.msg_id, kind=message.kind,
                src_pid=message.src_pid, dst_pid=pid,
                channel_id=message.channel_id, payload=message.payload,
                size_bytes=message.size_bytes, deliveries=tuple(deliveries),
                src_cluster=message.src_cluster,
                src_backup_cluster=message.src_backup_cluster,
                nondet_events=message.nondet_events))
            self.metrics.incr("recovery.messages_released")

    # ------------------------------------------------------------------
    # delivery (executive-processor context)
    # ------------------------------------------------------------------

    def handle_delivery(self, message: Message, delivery: Delivery,
                        seqno: int) -> None:
        if not self.alive:
            return
        role = delivery.role
        if role is DeliveryRole.PRIMARY_DEST:
            self._deliver_primary(message, delivery, seqno)
        elif role is DeliveryRole.DEST_BACKUP:
            self._deliver_dest_backup(message, delivery, seqno)
        elif role is DeliveryRole.SENDER_BACKUP:
            self._deliver_sender_backup(message, delivery)
        elif role is DeliveryRole.KERNEL:
            self._deliver_kernel(message, delivery)

    def _deliver_primary(self, message: Message, delivery: Delivery,
                         seqno: int) -> None:
        payload = message.payload
        if isinstance(payload, PageReply):
            self._handle_page_reply(payload)
            return
        pid = delivery.pid
        entry = self._route_get((message.channel_id, pid))
        if isinstance(payload, OpenReply) and payload.error is None:
            self._ensure_open_reply_entry(payload, pid, is_backup=False)
        if entry is None:
            entry = self._lazy_server_entry(message, delivery,
                                            is_backup=False)
        if entry is None:
            self.metrics.incr("msg.dropped_no_entry")
            self.trace.emit(self.sim.now, "msg.drop",
                            cluster=self.cluster_id, msg=message.describe())
            return
        pcb = self.pcbs.get(pid)
        is_server = (pid in self.server_registry
                     or (pcb is not None and pcb.is_server))
        if self.resilience is not None \
                and self.resilience.check_duplicate(self, message, delivery):
            return
        queued = QueuedMessage(message, seqno, self.sim.now)
        # Queue-based load leveling (off by default): a bounded server
        # inbox either parks overflow in arrival order ("defer", drained
        # as the server consumes) or drops it ("shed", lossy — the
        # DEST_BACKUP copy still exists; see docs/performance.md).
        limit = self.config.server_inbox_limit
        if limit is not None and is_server and not entry.kernel_internal \
                and (len(entry.queue) >= limit if self.resilience is None
                     else self.resilience.inbox_full(self, entry, limit)):
            if self.config.server_inbox_policy == "shed":
                self.metrics.incr("inbox.shed")
                if self.resilience is not None:
                    self.resilience.on_shed(self, message, delivery)
                return
            entry.overflow.append(queued)
            self.metrics.incr("inbox.deferred")
            self.metrics.record_hist("queue.overflow_depth",
                                     len(entry.overflow))
            return
        queue = entry.queue
        queue.append(queued)
        if self.resilience is not None:
            self.resilience.note_accepted(self, message, delivery)
        self._mcounters["msg.delivered_primary"] += 1
        self._record_hist(
            "queue.depth.server" if is_server else "queue.depth.user",
            len(queue))
        if pcb is not None and pcb.block is not None:
            self._maybe_wake(pcb, entry)

    def _deliver_dest_backup(self, message: Message, delivery: Delivery,
                             seqno: int) -> None:
        if self.config.ablate_dest_backup_save:
            self.metrics.incr("ablation.backup_copies_dropped")
            return
        payload = message.payload
        if isinstance(payload, OpenReply) and payload.error is None:
            self._ensure_open_reply_entry(payload, delivery.pid,
                                          is_backup=True)
        entry = self._route_get((message.channel_id, delivery.pid))
        if entry is None:
            entry = self._lazy_server_entry(message, delivery,
                                            is_backup=True)
        if entry is None:
            self.metrics.incr("msg.dropped_no_backup_entry")
            return
        entry.queue.append(QueuedMessage(message, seqno, self.sim.now))
        self._mcounters["msg.delivered_backup"] += 1
        # If the backup was already promoted here, a sender that has not
        # yet repaired its routing sent this leg to the old backup
        # location, which is now the live primary — treat it as a primary
        # delivery and wake any blocked reader.
        pcb = self.pcbs.get(delivery.pid)
        if pcb is not None:
            self._maybe_wake(pcb, entry)

    def _deliver_sender_backup(self, message: Message,
                               delivery: Delivery) -> None:
        entry = self._route_get((message.channel_id, delivery.pid))
        if entry is None:
            self.metrics.incr("msg.dropped_no_sender_entry")
            return
        entry.writes_since_sync += 1
        if message.nondet_events:
            self.nondet_saved.append(delivery.pid, message.nondet_events)
        self._mcounters["msg.counted_sender_backup"] += 1

    def _deliver_kernel(self, message: Message, delivery: Delivery) -> None:
        from ..backup import manager as backup_manager
        from ..recovery import rollforward

        payload = message.payload
        if message.kind is MessageKind.SYNC:
            backup_manager.apply_sync(self, payload)
        elif message.kind is MessageKind.BIRTH_NOTICE:
            backup_manager.apply_birth_notice(self, payload)
        elif message.kind is MessageKind.BACKUP_READY:
            rollforward.handle_backup_ready(self, payload)
        elif isinstance(payload, ExitNotice):
            backup_manager.apply_exit_notice(self, payload)
        elif isinstance(payload, dict) and payload.get("op") == "proc_failed":
            from ..recovery import procfail
            procfail.handle_proc_failed(self, payload)
        elif message.kind is MessageKind.CRASH_NOTICE:
            # Baseline detection is poll-based (repro.recovery.detector);
            # when the heartbeat service is on, this leg also carries its
            # probe/ack verification traffic (repro.resilience.heartbeat).
            if self.resilience is not None:
                self.resilience.on_kernel_notice(self, message)
        else:
            rollforward.handle_kernel_payload(self, payload)

    def _current_peer_route(self, peer_pid: Optional[Pid],
                            peer_cluster: Optional[ClusterId],
                            peer_backup: Optional[ClusterId]
                            ) -> Tuple[Optional[ClusterId],
                                       Optional[ClusterId]]:
        """Apply crash knowledge to peer routing carried in a payload.

        Requests and open replies re-serviced after a failover still name
        the peer's *pre-failure* location; a new entry built from them
        must point at the promoted destination, exactly as crash repair
        rewrote the entries that already existed (7.10.1 step 1).  Both
        whole-cluster crashes (``known_dead``) and individual-process
        failures (``moved_pids``, section 10 extension) are applied.
        """
        moved = self.moved_pids.get(peer_pid) if peer_pid is not None \
            else None
        if moved is not None:
            peer_cluster, peer_backup = moved
        if peer_cluster in self.known_dead:
            peer_cluster, peer_backup = peer_backup, None
        if peer_backup in self.known_dead:
            peer_backup = None
        return peer_cluster, peer_backup

    def _ensure_open_reply_entry(self, reply: OpenReply, owner: Pid,
                                 is_backup: bool) -> None:
        """Arrival of an open reply creates the channel's routing entry at
        this cluster (7.4.1)."""
        if self.routing.get(reply.channel_id, owner) is not None:
            return
        peer_cluster, peer_backup = self._current_peer_route(
            reply.peer_pid, reply.peer_cluster, reply.peer_backup_cluster)
        self.routing.add(RoutingEntry(
            channel_id=reply.channel_id, owner_pid=owner,
            is_backup=is_backup, peer_pid=reply.peer_pid,
            peer_cluster=peer_cluster,
            peer_backup_cluster=peer_backup,
            peer_kind=(PeerKind.SERVER if reply.peer_is_server
                       else PeerKind.USER),
            peer_fullback=reply.peer_fullback))
        self.metrics.incr("chan.entries_created")

    def _lazy_server_entry(self, message: Message, delivery: Delivery,
                           is_backup: bool) -> Optional[RoutingEntry]:
        """Create a server-side entry on first request arrival: requests
        carry their reply routing in the envelope."""
        target = delivery.pid
        known = (target in self.pcbs or target in self.backups
                 or target in self.server_registry)
        if not known or message.src_pid is None:
            return None
        peer_cluster, peer_backup = self._current_peer_route(
            message.src_pid, message.src_cluster,
            message.src_backup_cluster)
        entry = RoutingEntry(
            channel_id=message.channel_id, owner_pid=target,
            is_backup=is_backup, peer_pid=message.src_pid,
            peer_cluster=peer_cluster,
            peer_backup_cluster=peer_backup,
            peer_kind=PeerKind.USER)
        self.routing.add(entry)
        if not is_backup:
            pcb = self.pcbs.get(target)
            if pcb is not None:
                entry.fd = pcb.alloc_fd(message.channel_id)
        self.metrics.incr("chan.entries_created_lazy")
        return entry

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------

    def try_consume(self, pcb: ProcessControlBlock, fds: Tuple[Fd, ...]
                    ) -> Optional[Tuple[Fd, Any]]:
        """Consume the next message across ``fds`` by the deterministic
        rule: lowest cluster-arrival sequence number wins (7.5.1).

        An empty ``fds`` means "every open descriptor" — the bunch servers
        use, since their channels appear dynamically as clients connect.
        """
        pid = pcb.pid
        if len(fds) == 1:
            # Fast path for the dominant single-descriptor read/reply
            # wait: no candidate scan, no best-of bookkeeping.
            fd = fds[0]
            chan = pcb.fds.get(fd)
            if chan is None:
                raise KernelError(f"pid {pid}: bad fd {fd}")
            entry = self._route_get((chan, pid))
            if entry is None or not entry.queue:
                return None
        else:
            if not fds:
                fds = tuple(sorted(pcb.fds))
            best: Optional[Tuple[int, Fd, RoutingEntry]] = None
            for fd in fds:
                chan = pcb.fds.get(fd)
                if chan is None:
                    raise KernelError(f"pid {pid}: bad fd {fd}")
                entry = self._route_get((chan, pid))
                if entry is None or not entry.queue:
                    continue
                seqno = entry.queue[0].arrival_seqno
                if best is None or seqno < best[0]:
                    best = (seqno, fd, entry)
            if best is None:
                return None
            _, fd, entry = best
        queued = entry.queue.pop(0)
        if entry.overflow:
            # Load leveling: consuming one message admits the oldest
            # deferred one; overflow seqnos all exceed queued seqnos, so
            # appending keeps the queue sorted by arrival.
            entry.queue.append(entry.overflow.pop(0))
            self.metrics.incr("inbox.resumed")
        entry.reads_since_sync += 1
        entry.changed_since_sync = True
        pcb.reads_since_sync += 1
        self._mcounters["msg.reads"] += 1
        self._record_hist("latency.queue_wait",
                          self.sim.now - queued.arrival_time)
        return fd, queued.message.payload

    def _maybe_wake(self, pcb: ProcessControlBlock,
                    entry: RoutingEntry) -> None:
        block = pcb.block
        if block is None:
            return
        if block.kind in ("read", "read_any", "reply", "open"):
            if not block.fds:  # bunch over all descriptors
                if entry.fd is not None:
                    self.wake_process(pcb)
                return
            fds = pcb.fds
            channel_id = entry.channel_id
            for fd in block.fds:
                if fds.get(fd) == channel_id:
                    self.wake_process(pcb)
                    return

    def wake_process(self, pcb: ProcessControlBlock) -> None:
        if pcb.state in (ProcState.BLOCKED_READ, ProcState.BLOCKED_OPEN,
                         ProcState.BLOCKED_PAGE):
            self.scheduler.make_ready(pcb)

    # ------------------------------------------------------------------
    # paging
    # ------------------------------------------------------------------

    def page_fault(self, pcb: ProcessControlBlock, page_no: int) -> None:
        """A step touched a non-resident page: demand it from the page
        server's backup account (7.10.2)."""
        pcb.state = ProcState.BLOCKED_PAGE
        pcb.block = BlockInfo(kind="page", page_no=page_no)
        key = (pcb.pid, page_no)
        if key not in self.pending_page_ins:
            self.pending_page_ins[key] = True
            self._send_page_channel(
                pcb, PageIn(pid=pcb.pid, page_no=page_no, from_backup=True,
                            reply_cluster=self.cluster_id))
            self.metrics.incr("paging.faults")
        self.trace.emit(self.sim.now, "paging.fault", pid=pcb.pid,
                        page=page_no)

    def _handle_page_reply(self, reply: PageReply) -> None:
        self.pending_page_ins.pop((reply.pid, reply.page_no), None)
        pcb = self.pcbs.get(reply.pid)
        if pcb is None:
            return
        pcb.space.install_page(reply.page_no, reply.data)
        self.metrics.incr("paging.pages_restored")
        if pcb.state is ProcState.BLOCKED_PAGE and pcb.block is not None \
                and pcb.block.page_no == reply.page_no:
            self.scheduler.make_ready(pcb)

    def reissue_pending_page_ins(self) -> None:
        """The page server failed over: re-send outstanding page requests
        to its new location."""
        for (pid, page_no) in list(self.pending_page_ins):
            pcb = self.pcbs.get(pid)
            if pcb is None:
                self.pending_page_ins.pop((pid, page_no), None)
                continue
            self._send_page_channel(
                pcb, PageIn(pid=pid, page_no=page_no, from_backup=True,
                            reply_cluster=self.cluster_id))
            self.metrics.incr("paging.faults_reissued")

    # ------------------------------------------------------------------
    # signals and alarms
    # ------------------------------------------------------------------

    def schedule_alarm(self, pcb: ProcessControlBlock, seq: int,
                       delay: Ticks) -> None:
        deadline = self.sim.now + delay
        pcb.pending_alarms.append((seq, deadline))
        self.sim.call_after(delay, lambda: self._fire_alarm(pcb.pid, seq),
                            label=f"alarm:{pcb.pid}:{seq}")

    def _fire_alarm(self, pid: Pid, seq: int) -> None:
        if not self.alive:
            return
        pcb = self.pcbs.get(pid)
        if pcb is None:
            return
        if not any(s == seq for s, _ in pcb.pending_alarms):
            return
        pcb.pending_alarms = [(s, d) for s, d in pcb.pending_alarms
                              if s != seq]
        self.post_signal(pcb, SignalPayload(signal="alarm", seq=seq))

    def post_signal(self, pcb: ProcessControlBlock,
                    payload: SignalPayload) -> None:
        """Queue an asynchronous signal on the process's signal channel —
        "all asynchronous signals are sent via message" (7.5.2), so the
        backup cluster saves a copy too."""
        deliveries = [Delivery(pcb.cluster_id, DeliveryRole.PRIMARY_DEST,
                               pcb.pid, pcb.signal_channel)]
        if pcb.backup_cluster is not None:
            deliveries.append(Delivery(pcb.backup_cluster,
                                       DeliveryRole.DEST_BACKUP, pcb.pid,
                                       pcb.signal_channel))
        self.send_kernel_message(MessageKind.SIGNAL, payload,
                                 tuple(deliveries), size=16,
                                 channel_id=pcb.signal_channel)
        self.metrics.incr("signal.posted")

    def check_signals(self, pcb: ProcessControlBlock) -> Optional[
            SignalPayload]:
        """Step-boundary signal check (7.5.2).

        Ignored and duplicate signals are removed and counted as a read.
        Returns a signal the program wants to handle (the scheduler forces
        a sync first), or None.
        """
        entry = self._route_get((pcb.signal_channel, pcb.pid))
        if entry is None or not entry.queue:
            # Runs once per step; the queue is almost always empty.
            return None
        handled = getattr(pcb.program, "handled_signals", ())
        while entry.queue:
            payload = entry.queue[0].message.payload
            if not isinstance(payload, SignalPayload):
                entry.queue.pop(0)
                continue
            seen = pcb.regs.get("_sig_seen", 0)
            if payload.seq <= seen or payload.signal not in handled:
                entry.queue.pop(0)
                entry.reads_since_sync += 1
                entry.changed_since_sync = True
                pcb.reads_since_sync += 1
                self.metrics.incr("signal.ignored")
                continue
            return payload
        return None

    def peek_signal(self, pcb: ProcessControlBlock) -> SignalPayload:
        """The head signal, without consuming it (the handler runs first:
        if it page-faults the whole step retries with the signal still
        queued)."""
        entry = self.routing.require(pcb.signal_channel, pcb.pid)
        return entry.queue[0].message.payload

    def consume_signal(self, pcb: ProcessControlBlock) -> SignalPayload:
        """Pop the head signal (after the pre-handling sync)."""
        entry = self.routing.require(pcb.signal_channel, pcb.pid)
        payload = entry.queue.pop(0).message.payload
        entry.reads_since_sync += 1
        entry.changed_since_sync = True
        pcb.reads_since_sync += 1
        pcb.regs["_sig_seen"] = payload.seq
        self.metrics.incr("signal.handled")
        return payload

    # ------------------------------------------------------------------
    # nondeterministic events (section 10 extension)
    # ------------------------------------------------------------------

    def _consume_nondet(self, pcb: ProcessControlBlock,
                        kind: str) -> Tuple[bool, Any]:
        """During rollforward, pop the next logged event of the expected
        kind.  Returns ``(replayed, value)``; ``replayed=False`` means no
        evidence survived and the event may be performed afresh
        (section 10's consistency argument)."""
        if not pcb.recovering:
            return False, None
        try:
            logged_kind, value = self.nondet_saved.consume(pcb.pid)
        except LookupError:
            self.metrics.incr("nondet.fresh_during_recovery")
            return False, None
        if logged_kind != kind:
            # Log desynchronization would indicate a nondeterministic
            # program; surface it loudly rather than replay garbage.
            raise KernelError(
                f"pid {pcb.pid}: nondet log expected {kind!r}, "
                f"found {logged_kind!r}")
        self.metrics.incr("nondet.replayed")
        return True, value

    def _record_nondet(self, pcb: ProcessControlBlock, kind: str,
                       value: Any) -> None:
        buffer = self.nondet_buffers.get(pcb.pid)
        if buffer is not None:
            buffer.record((kind, value))
        self.metrics.incr("nondet.events")

    def read_clock(self, pcb: ProcessControlBlock) -> Ticks:
        """Privileged local clock read, logged for replay (section 10)."""
        replayed, value = self._consume_nondet(pcb, "clock")
        if not replayed:
            value = self.sim.now
        self._record_nondet(pcb, "clock", value)
        return value

    def poll_read(self, pcb: ProcessControlBlock, fd: Fd) -> Any:
        """Non-blocking read (section 10 asynchronous-read extension).

        The empty/non-empty *outcome* is the nondeterministic event; the
        message content itself is ordinary saved input.  Replay: a logged
        hit consumes the next saved message, a logged miss touches
        nothing — reproducing the primary's exact poll sequence.
        """
        replayed, got = self._consume_nondet(pcb, "poll")
        if replayed:
            if got:
                result = self.try_consume(pcb, (fd,))
                if result is None:
                    raise KernelError(
                        f"pid {pcb.pid}: poll replay found no saved "
                        f"message on fd {fd}")
                payload = result[1]
            else:
                payload = None
        else:
            result = self.try_consume(pcb, (fd,))
            payload = result[1] if result is not None else None
        self._record_nondet(pcb, "poll", payload is not None)
        self.metrics.incr("nondet.polls")
        return payload

    # ------------------------------------------------------------------
    # pluggable privileged actions
    # ------------------------------------------------------------------

    def register_action_handler(self, action_type: Type,
                                handler: ActionHandler) -> None:
        self.action_handlers[action_type] = handler
