"""Piggybacked nondeterministic-event logging (section 10 extension).

The paper's future-work section sketches how to back up nondeterministic
events (asynchronous IO, shared memory, local clock reads) without a
message per event: buffer the results, attach them to the *next ordinary
outgoing message* — whose copy the sender's backup sees anyway — and on
recovery replay the logged results deterministically.  A crash before any
message escaped wipes all evidence of the events, so the backup may redo
them nondeterministically without anyone observing an inconsistency.

We implement it for the ``ReadClock`` action (a local, environmental clock
read, normally forbidden to deterministic processes):

* the primary kernel buffers each result in the process's
  :class:`NondetBuffer`;
* every counted user-message send carries the buffered values in its
  envelope and clears the buffer;
* the SENDER_BACKUP delivery appends them to a :class:`NondetSavedLog` at
  the backup cluster;
* a promoted backup consumes the saved log before generating fresh values;
* a sync clears both sides (pre-sync events are embedded in synced state).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Tuple

from ..types import Pid


@dataclass
class NondetBuffer:
    """Primary-side buffer of not-yet-piggybacked event results."""

    pending: List[Any] = field(default_factory=list)
    produced_total: int = 0

    def record(self, value: Any) -> None:
        self.pending.append(value)
        self.produced_total += 1

    def take_for_piggyback(self) -> Tuple[Any, ...]:
        """Drain the buffer into a message envelope."""
        values = tuple(self.pending)
        self.pending.clear()
        return values

    def clear_on_sync(self) -> None:
        self.pending.clear()


class NondetSavedLog:
    """Backup-cluster store of piggybacked event results, per process."""

    def __init__(self) -> None:
        self._saved: Dict[Pid, Deque[Any]] = {}

    def append(self, pid: Pid, values: Tuple[Any, ...]) -> None:
        if not values:
            return
        self._saved.setdefault(pid, deque()).extend(values)

    def consume(self, pid: Pid) -> Any:
        """Pop the oldest logged value for a replaying process, or raise
        ``LookupError`` if no evidence survives (the caller then performs
        the event afresh, which section 10 argues is consistent)."""
        queue = self._saved.get(pid)
        if not queue:
            raise LookupError(f"no saved nondet events for pid {pid}")
        return queue.popleft()

    def pending_count(self, pid: Pid) -> int:
        queue = self._saved.get(pid)
        return len(queue) if queue else 0

    def clear_on_sync(self, pid: Pid) -> None:
        self._saved.pop(pid, None)

    def drop(self, pid: Pid) -> None:
        self._saved.pop(pid, None)
