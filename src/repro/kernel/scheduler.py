"""Process scheduling and the step-execution engine.

Work processors run processes action by action.  At every step boundary
the engine performs the paper's kernel duties in a fixed order:

1. resolve whatever the process was blocked on (message arrival, open
   reply, page-in);
2. sync if a trigger fired — reads-since-sync, execution time, or a forced
   sync (7.8);
3. deliver a pending asynchronous signal, forcing a sync just prior to
   handling it (7.5.2);
4. run one program step inside a memory/register transaction and perform
   the returned action.

A :class:`~repro.paging.PageFault` aborts the step with no side effects;
the process blocks until the page server supplies the page, then the step
re-runs — that is how a freshly promoted backup "gradually brings its
address space into memory" (7.10.2).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional, TYPE_CHECKING

from ..hardware.disk import DiskError
from ..hardware.processor import WorkProcessor
from ..messages.payloads import EOFMarker, OpenReply
from ..messages.routing import EntryStatus, PeerKind
from ..paging import MemoryTxn, PageFault
from ..programs.actions import (Alarm, Close, Compute, Exit, Fork, GetPid,
                                GetTime, Open, Poll, Read, ReadAny,
                                ReadClock, Write, Yield)
from ..programs.program import StepContext
from ..types import Pid, Ticks
from .pcb import BlockInfo, ProcState, ProcessControlBlock

if TYPE_CHECKING:  # pragma: no cover
    from .kernel import ClusterKernel


class SchedulerError(Exception):
    """Raised when a program returns an unhandled action type."""


#: Syscall actions whose handling is deferred whole to ``_finish_syscall``
#: after the syscall-overhead delay (everything except Compute/Exit, the
#: entry-time-valued GetPid/ReadClock/Poll, and custom privileged actions).
_DEFERRED_SYSCALLS = (Read, Write, ReadAny, Open, Close, Fork, GetTime,
                      Alarm, Yield)

#: Exact-type membership test for the deferred set.  Actions are frozen
#: dataclasses that are never subclassed (custom privileged actions go
#: through ``kernel.action_handlers``, which is already keyed by exact
#: type), so ``__class__ in set`` replaces a nine-way isinstance scan.
_DEFERRED_SET = frozenset(_DEFERRED_SYSCALLS)

#: Entry-time-valued syscalls: result defined at syscall *entry* (see
#: ``_perform_action``); the int tags pick the branch after one lookup.
_ENTRY_KIND = {GetPid: 0, ReadClock: 1, Poll: 2}


class Scheduler:
    """Per-cluster ready queue plus the action interpreter.

    Two-level priority: server processes (and crash handling, which runs
    through a separate gate) ahead of normal user processes, matching the
    paper's "very high priority" treatment of system work.

    The step engine is the hottest non-loop code in the repository, so it
    trades a little uniformity for allocation avoidance (measured in the
    P3 A/B benchmark):

    * one :class:`StepContext` + :class:`MemoryTxn` pair is cached per
      PCB and reset per step instead of allocated per step;
    * the ``proc``/``pcb`` continuation closures are created once per
      processor *assignment* (``_assign``) and reused by every step the
      assignment runs, instead of one fresh closure per step;
    * `sim.call_after` and `metrics.add_busy` are bound once at
      construction;
    * action dispatch is exact-type dict lookups instead of isinstance
      chains.
    """

    def __init__(self, kernel: "ClusterKernel") -> None:
        self.kernel = kernel
        self._ready_high: Deque[Pid] = deque()
        self._ready_normal: Deque[Pid] = deque()
        # Hot-path bindings (kernel.sim/metrics are fixed for the
        # kernel's lifetime; a revived cluster builds a fresh kernel).
        self._call_after = kernel.sim.call_after
        self._add_busy = kernel.metrics.add_busy
        # The busy store itself (mutated in place, never replaced): the
        # per-step user/syscall charges skip even the add_busy call layer.
        self._busy_acc = kernel.metrics._busy
        self._syscall_overhead = kernel.config.costs.syscall_overhead
        self._quantum = kernel.config.costs.quantum
        self._finishers = {
            Read: self._do_read,
            Write: self._do_write,
            ReadAny: self._do_read_any,
            Open: self._do_open,
            Close: self._do_close,
            Fork: self._do_fork,
            GetTime: self._do_gettime,
            Alarm: self._do_alarm,
            Yield: self._do_yield,
        }

    # -- queue management ---------------------------------------------------

    def make_ready(self, pcb: ProcessControlBlock) -> None:
        if pcb.state in (ProcState.RUNNING, ProcState.READY,
                         ProcState.EXITED):
            if pcb.state is ProcState.READY:
                self.dispatch()
            return
        pcb.state = ProcState.READY
        # pcb.block stays: _step resolves the pending action on resume.
        queue = self._ready_high if pcb.is_server else self._ready_normal
        queue.append(pcb.pid)
        self.dispatch()

    def _pop_ready(self) -> Optional[ProcessControlBlock]:
        for queue in (self._ready_high, self._ready_normal):
            while queue:
                pid = queue.popleft()
                pcb = self.kernel.pcbs.get(pid)
                if pcb is not None and pcb.state is ProcState.READY:
                    return pcb
        return None

    def has_ready(self) -> bool:
        return any(self.kernel.pcbs.get(pid) is not None
                   and self.kernel.pcbs[pid].state is ProcState.READY
                   for queue in (self._ready_high, self._ready_normal)
                   for pid in queue)

    def dispatch(self) -> None:
        """Assign ready processes to idle work processors."""
        kernel = self.kernel
        if not kernel.alive or kernel.crash_handling:
            return
        for proc in kernel.cluster.work_processors:
            if proc.current_pid is not None:  # proc.idle, sans descriptor
                continue
            pcb = self._pop_ready()
            if pcb is None:
                return
            self._assign(proc, pcb)

    def _assign(self, proc: WorkProcessor, pcb: ProcessControlBlock) -> None:
        pcb.state = ProcState.RUNNING
        pcb.on_processor = proc.index
        pcb.quantum_used = 0
        proc.current_pid = pcb.pid
        # Continuations for this assignment, reused by every step it runs.
        # Safe to cache: a PCB schedules at most one continuation at a
        # time, and it cannot be re-assigned (which would rebind these)
        # while one is pending — RUNNING processes are never in a ready
        # queue.
        pcb._sched_step = step = lambda: self._step(proc, pcb)
        pcb._sched_continue = lambda: self._continue(proc, pcb)
        cost = self.kernel.config.costs.context_switch
        self._charge(proc, pcb, cost, "context_switch")
        self._call_after(cost, step, label=pcb.label_start)

    def _release(self, proc: WorkProcessor,
                 pcb: Optional[ProcessControlBlock]) -> None:
        proc.current_pid = None
        if pcb is not None:
            pcb.on_processor = None
        self.dispatch()

    def _charge(self, proc: WorkProcessor, pcb: ProcessControlBlock,
                cost: Ticks, activity: str) -> None:
        self.kernel.metrics.add_busy(proc.resource_name, activity, cost)
        pcb.note_exec(cost)

    def _gone(self, pcb: ProcessControlBlock) -> bool:
        """Has this exact PCB been exited, failed, or replaced (a restart
        reuses the pid but not the object) since the continuation was
        scheduled?"""
        return (not self.kernel.alive
                or self.kernel.pcbs.get(pcb.pid) is not pcb
                or pcb.state is ProcState.EXITED)

    # -- the step engine ------------------------------------------------------

    def _step(self, proc: WorkProcessor, pcb: ProcessControlBlock) -> None:
        kernel = self.kernel
        if not kernel.alive:
            return
        # _gone(), inlined: alive was just checked.
        if kernel.pcbs.get(pcb.pid) is not pcb \
                or pcb.state is ProcState.EXITED:
            self._release(proc, pcb)
            return

        # 1. Resolve a pending block.
        block = pcb.block
        if block is not None:
            if block.kind != "page":
                if not self._resolve_block(proc, pcb):
                    return  # still blocked; processor released inside
            else:
                pcb.block = None  # page installed; the step below retries

        # 2a. Baseline checkpointing (section 2 comparison), if enabled.
        if pcb.checkpoint_every is not None \
                and pcb.backup_cluster is not None \
                and pcb.ops_since_checkpoint >= pcb.checkpoint_every:
            self._do_checkpoint(proc, pcb)
            return

        # 2b. Sync triggers (7.8), pcb.sync_due() inlined — this check
        # runs once per step for every protected process.  A pending
        # full-sync target (backup re-creation) fires even when the
        # process currently has no backup cluster at all.
        if (pcb.backup_cluster is not None or
                pcb.full_sync_target is not None) \
                and (pcb.sync_forced
                     or pcb.reads_since_sync >= pcb.sync_reads_threshold
                     or pcb.exec_since_sync >= pcb.sync_time_threshold):
            self._do_sync(proc, pcb)
            return

        # 3. Asynchronous signals (7.5.2): sync just prior to handling.
        # The empty-queue early-out of kernel.check_signals is inlined —
        # it runs once per step and the queue is almost always empty.
        entry = kernel._route_get((pcb.signal_channel, pcb.pid))
        if entry is not None and entry.queue \
                and kernel.check_signals(pcb) is not None:
            if pcb.backup_cluster is not None:
                self._do_sync(proc, pcb, then_signal=True)
                return
            self._handle_signal(proc, pcb)
            return

        # 4. One program step, inside the PCB's cached transaction
        # context (reset here; allocated once per PCB).
        try:
            ctx = pcb._sched_ctx
            txn = ctx.mem
            txn._writes.clear()
            txn.pages_touched.clear()
        except AttributeError:
            txn = MemoryTxn(pcb.space)
            ctx = StepContext(pid=pcb.pid, mem=txn, regs=pcb.regs)
            pcb._sched_ctx = ctx
        ctx.regs = regs = pcb.regs.copy()
        try:
            action = pcb.program.step(ctx)
        except PageFault as fault:
            kernel.page_fault(pcb, fault.page_no)
            self._release(proc, pcb)
            return
        # Commit the step's memory and register effects, then act.
        txn.commit()
        pcb.regs = regs
        pcb.total_steps += 1
        pcb.ops_since_checkpoint += 1
        self._perform_action(proc, pcb, action)

    def _resolve_block(self, proc: WorkProcessor,
                       pcb: ProcessControlBlock) -> bool:
        """Try to complete the blocked action.  Returns True when the
        process may continue (block resolved), False when it re-blocked."""
        kernel = self.kernel
        block = pcb.block
        assert block is not None
        result = kernel.try_consume(pcb, block.fds)
        if result is None:
            pcb.state = (ProcState.BLOCKED_OPEN if block.kind == "open"
                         else ProcState.BLOCKED_READ)
            self._release(proc, pcb)
            return False
        fd, payload = result
        if block.since is not None:
            # End-to-end request latency (write ... await_reply -> reply
            # consumed) and plain read-wait, in virtual ticks.  Metrics
            # only: never traced, never synced, so traces and digests
            # are untouched.
            waited = kernel.sim.now - block.since
            if block.kind == "reply":
                kernel._record_hist("latency.request", waited)
            elif block.kind in ("read", "read_any"):
                kernel._record_hist("latency.read_wait", waited)
        if block.kind == "read_any":
            pcb.regs["rv"] = (fd, payload)
        elif block.kind == "open":
            pcb.regs["rv"] = self._finish_open(pcb, payload)
        else:  # "read" / "reply"
            pcb.regs["rv"] = payload
        pcb.block = None
        return True

    def _finish_open(self, pcb: ProcessControlBlock, payload: Any) -> Any:
        if not isinstance(payload, OpenReply):
            raise SchedulerError(
                f"pid {pcb.pid}: expected OpenReply, got {payload!r}")
        if payload.error is not None:
            return None
        fd = pcb.alloc_fd(payload.channel_id)
        entry = self.kernel.routing.get(payload.channel_id, pcb.pid)
        if entry is not None:
            entry.fd = fd
        return fd

    def _do_checkpoint(self, proc: WorkProcessor,
                       pcb: ProcessControlBlock) -> None:
        from ..baselines.checkpointing import perform_checkpoint

        stall = perform_checkpoint(self.kernel, pcb)
        self._charge(proc, pcb, stall, "checkpoint_stall")
        def resume() -> None:
            if not self.kernel.alive:
                return
            if self._gone(pcb):
                self._release(proc, pcb)
                return
            self._step(proc, pcb)

        self.kernel.sim.call_after(stall, resume,
                                   label=f"sched.checkpoint:{pcb.pid}")

    def _do_sync(self, proc: WorkProcessor, pcb: ProcessControlBlock,
                 then_signal: bool = False) -> None:
        from ..backup.sync import perform_sync

        stall = perform_sync(self.kernel, pcb)
        self._charge(proc, pcb, stall, "sync_stall")
        pcb.exec_since_sync = 0

        def resume() -> None:
            if not self.kernel.alive:
                return
            if self._gone(pcb):
                self._release(proc, pcb)
                return
            if then_signal:
                self._handle_signal(proc, pcb)
            else:
                self._step(proc, pcb)

        self.kernel.sim.call_after(stall, resume, label=pcb.label_sync)

    def _handle_signal(self, proc: WorkProcessor,
                       pcb: ProcessControlBlock) -> None:
        kernel = self.kernel
        # Run the handler against the *peeked* signal: if it page-faults
        # (a freshly promoted backup handling a replayed signal), nothing
        # has been consumed or committed and the whole step retries once
        # the page arrives.
        payload = kernel.peek_signal(pcb)
        txn = MemoryTxn(pcb.space)
        regs = dict(pcb.regs)
        ctx = StepContext(pid=pcb.pid, mem=txn, regs=regs)
        try:
            pcb.program.on_signal(ctx, payload)
        except PageFault as fault:
            kernel.page_fault(pcb, fault.page_no)
            self._release(proc, pcb)
            return
        kernel.consume_signal(pcb)
        regs["_sig_seen"] = payload.seq  # survives the regs swap below
        txn.commit()
        pcb.regs = regs
        cost = self._syscall_overhead
        self._charge(proc, pcb, cost, "signal")
        self._call_after(cost, pcb._sched_continue, label=pcb.label_signal)

    # -- action interpretation ---------------------------------------------

    def _perform_action(self, proc: WorkProcessor,
                        pcb: ProcessControlBlock, action: Any) -> None:
        kernel = self.kernel
        cls = action.__class__

        if cls is Compute:
            cost = action.cost
            self._busy_acc[(proc.resource_name, "user")] += cost
            pcb.note_exec(cost)
            self._call_after(cost, pcb._sched_continue,
                             label=pcb.label_compute)
            return

        if cls is Exit:
            kernel.exit_process(pcb, action.code)
            self._release(proc, pcb)
            return

        # Everything else pays syscall entry/exit.
        overhead = self._syscall_overhead
        self._busy_acc[(proc.resource_name, "syscall")] += overhead
        pcb.note_exec(overhead)

        entry_kind = _ENTRY_KIND.get(cls)
        if entry_kind is not None:
            # The result is defined at syscall *entry* (read_clock records
            # a nondeterministic-event value that must not shift by the
            # overhead delay), so set rv now and schedule a bare continue
            # — _continue re-checks liveness itself.
            if entry_kind == 0:  # GetPid
                pcb.regs["rv"] = pcb.pid
            elif entry_kind == 1:  # ReadClock
                pcb.regs["rv"] = kernel.read_clock(pcb)
            else:  # Poll
                pcb.regs["rv"] = kernel.poll_read(pcb, action.fd)
            self._call_after(overhead, pcb._sched_continue,
                             label=pcb.label_sys)
            return

        if cls in _DEFERRED_SET:
            # One continuation closure per syscall; the liveness checks
            # and the action-type dispatch both run after the overhead
            # delay, inside _finish_syscall.
            self._call_after(
                overhead,
                lambda: self._finish_syscall(proc, pcb, action),
                label=pcb.label_sys)
            return

        handler = kernel.action_handlers.get(cls)
        if handler is None:
            raise SchedulerError(
                f"pid {pcb.pid}: unknown action {action!r}")
        try:
            cost, rv = handler(kernel, pcb, action)
        except DiskError as error:
            # Unrecoverable peripheral hardware (e.g. both mirrored
            # drives dead).  Surface it as a clean whole-cluster crash
            # through the detector path — never as an exception escaping
            # the event loop.
            kernel.fatal_hardware(str(error))
            return
        pcb.regs["rv"] = rv
        if cost:
            self._charge(proc, pcb, cost, "privileged")
        self._call_after(overhead + cost, pcb._sched_continue,
                         label=pcb.label_priv)

    def _finish_syscall(self, proc: WorkProcessor,
                        pcb: ProcessControlBlock, action: Any) -> None:
        """The post-overhead half of a blocking/IO syscall."""
        kernel = self.kernel
        if not kernel.alive:
            return
        if kernel.pcbs.get(pcb.pid) is not pcb \
                or pcb.state is ProcState.EXITED:
            self._release(proc, pcb)
            return
        self._finishers[action.__class__](proc, pcb, action)

    def _do_read(self, proc: WorkProcessor, pcb: ProcessControlBlock,
                 action: Read) -> None:
        self._begin_block(proc, pcb, "read", (action.fd,))

    def _do_read_any(self, proc: WorkProcessor, pcb: ProcessControlBlock,
                     action: ReadAny) -> None:
        self._begin_block(proc, pcb, "read_any", tuple(action.fds))

    def _do_yield(self, proc: WorkProcessor, pcb: ProcessControlBlock,
                  action: Yield) -> None:
        pcb.regs["rv"] = True
        self._requeue(proc, pcb)

    def _begin_block(self, proc: WorkProcessor, pcb: ProcessControlBlock,
                     kind: str, fds: tuple) -> None:
        pcb.block = BlockInfo(kind=kind, fds=fds,
                              since=self.kernel.sim.now)
        if self._resolve_block(proc, pcb):
            self._continue(proc, pcb)

    def _do_write(self, proc: WorkProcessor, pcb: ProcessControlBlock,
                  action: Write) -> None:
        kernel = self.kernel
        chan = pcb.channel_for_fd(action.fd)
        if chan is None:
            raise SchedulerError(f"pid {pcb.pid}: write on bad fd "
                                 f"{action.fd}")
        entry = kernel.routing.require(chan, pcb.pid)
        kernel.send_user_message(pcb, entry, action.payload,
                                 size=action.size_bytes)
        if action.await_reply:
            self._begin_block(proc, pcb, "reply", (action.fd,))
        else:
            pcb.regs["rv"] = True
            self._continue(proc, pcb)

    def _do_open(self, proc: WorkProcessor, pcb: ProcessControlBlock,
                 action: Open) -> None:
        from ..messages.payloads import OpenRequest
        from ..backup.modes import BackupMode

        kernel = self.kernel
        fs_fd = pcb.fs_channel_fd
        chan = pcb.channel_for_fd(fs_fd)
        entry = kernel.routing.require(chan, pcb.pid)
        opener_seq = pcb.regs.get("_open_seq", 0) + 1
        pcb.regs["_open_seq"] = opener_seq
        request = OpenRequest(
            name=action.name, opener_pid=pcb.pid,
            opener_cluster=kernel.cluster_id,
            opener_backup_cluster=pcb.backup_cluster,
            reply_channel=chan,
            opener_fullback=(pcb.backup_mode is BackupMode.FULLBACK),
            opener_seq=opener_seq)
        kernel.send_user_message(pcb, entry, request, size=64)
        self._begin_block(proc, pcb, "open", (fs_fd,))

    def _do_close(self, proc: WorkProcessor, pcb: ProcessControlBlock,
                  action: Close) -> None:
        kernel = self.kernel
        chan = pcb.channel_for_fd(action.fd)
        if chan is None:
            raise SchedulerError(f"pid {pcb.pid}: close on bad fd "
                                 f"{action.fd}")
        entry = kernel.routing.require(chan, pcb.pid)
        if entry.peer_kind is PeerKind.USER and entry.peer_pid is not None \
                and entry.status is EntryStatus.OPEN:
            kernel.send_user_message(pcb, entry, EOFMarker(pcb.pid),
                                     size=16)
        entry.status = EntryStatus.CLOSED
        pcb.closed_since_sync.append(chan)
        del pcb.fds[action.fd]
        pcb.regs["rv"] = True
        self._continue(proc, pcb)

    def _do_fork(self, proc: WorkProcessor, pcb: ProcessControlBlock,
                 action: Fork) -> None:
        child_pid = self.kernel.fork_child(pcb, action.child_program)
        pcb.regs["rv"] = child_pid
        self._continue(proc, pcb)

    def _do_gettime(self, proc: WorkProcessor, pcb: ProcessControlBlock,
                    action: GetTime = None) -> None:
        kernel = self.kernel
        chan = pcb.channel_for_fd(pcb.ps_channel_fd)
        entry = kernel.routing.require(chan, pcb.pid)
        kernel.send_user_message(pcb, entry, ("time",), size=16)
        self._begin_block(proc, pcb, "reply", (pcb.ps_channel_fd,))

    def _do_alarm(self, proc: WorkProcessor, pcb: ProcessControlBlock,
                  action: Alarm) -> None:
        seq = pcb.regs.get("_alarm_seq", 0) + 1
        pcb.regs["_alarm_seq"] = seq
        self.kernel.schedule_alarm(pcb, seq, action.delay)
        pcb.regs["rv"] = True
        self._continue(proc, pcb)

    # -- continuation / quantum -------------------------------------------

    def _continue(self, proc: WorkProcessor,
                  pcb: ProcessControlBlock) -> None:
        kernel = self.kernel
        if not kernel.alive:
            return
        # _gone() inlined (alive just checked), plus the RUNNING check.
        if kernel.pcbs.get(pcb.pid) is not pcb \
                or pcb.state is not ProcState.RUNNING:
            self._release(proc, pcb)
            return
        if kernel.crash_handling:
            self._requeue(proc, pcb)
            return
        if pcb.quantum_used >= self._quantum and self.has_ready():
            self._requeue(proc, pcb)
            return
        self._step(proc, pcb)

    def _requeue(self, proc: WorkProcessor,
                 pcb: ProcessControlBlock) -> None:
        pcb.state = ProcState.READY
        queue = self._ready_high if pcb.is_server else self._ready_normal
        queue.append(pcb.pid)
        self._release(proc, pcb)
