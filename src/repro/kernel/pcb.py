"""Process control blocks.

A PCB is the kernel-side identity of a process.  The paper's split matters
here (section 7.5): fields are either *cluster-independent* (pid, register
file, fd map, read/write accounting — everything a sync message carries and
a backup may rely on) or *environmental* (which work processor it last ran
on, scheduling bookkeeping — never exposed to programs and never synced).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from ..backup.modes import BackupMode
from ..paging import AddressSpace
from ..programs.program import Program
from ..types import ChannelId, ClusterId, Fd, Pid, Ticks


class ProcState(enum.Enum):
    """Scheduling state of a primary process."""

    EMBRYO = "embryo"                  # created, never yet enqueued
    READY = "ready"
    RUNNING = "running"
    BLOCKED_READ = "blocked_read"      # awaiting a message (read / reply)
    BLOCKED_OPEN = "blocked_open"      # awaiting an open reply
    BLOCKED_PAGE = "blocked_page"      # awaiting a page-in from the page server
    EXITED = "exited"


@dataclass
class BlockInfo:
    """Why a process is blocked and what will wake it."""

    kind: str                            # "read" | "read_any" | "reply" | "open" | "page"
    fds: Tuple[Fd, ...] = ()
    page_no: Optional[int] = None
    #: Virtual time the block began; resolving it records the elapsed
    #: wait into the latency histograms (telemetry only, never synced).
    since: Optional[Ticks] = None


@dataclass
class ProcessControlBlock:
    """Kernel state for one primary process."""

    pid: Pid
    program: Program
    cluster_id: ClusterId
    backup_cluster: Optional[ClusterId]
    backup_mode: BackupMode
    family_head: Pid
    parent: Optional[Pid]
    space: AddressSpace
    is_server: bool = False
    state: ProcState = ProcState.EMBRYO
    #: Cluster-independent register file (synced; includes rv / pc).
    regs: Dict[str, Any] = field(default_factory=dict)
    #: fd -> channel id (cluster-independent; carried by sync deltas).
    fds: Dict[Fd, ChannelId] = field(default_factory=dict)
    next_fd: Fd = 0
    #: Well-known channels every process is born with (section 7.6 gives
    #: every process standing file-server channels; we add the process
    #: server and the signal channel).
    signal_channel: Optional[ChannelId] = None
    page_channel: Optional[ChannelId] = None
    fs_channel_fd: Optional[Fd] = None
    ps_channel_fd: Optional[Fd] = None
    #: Sync accounting (section 7.8).
    reads_since_sync: int = 0
    exec_since_sync: Ticks = 0
    sync_reads_threshold: int = 20
    sync_time_threshold: Ticks = 200_000
    sync_seq: int = 0
    last_sync_time: Ticks = 0
    sync_forced: bool = False
    #: Deferred backup creation (section 7.7).
    has_backup_process: bool = False
    children_without_backup: Set[Pid] = field(default_factory=set)
    #: Channels closed since the last sync (reported as deltas).
    closed_since_sync: List[ChannelId] = field(default_factory=list)
    #: Pending alarms as (seq, absolute fire deadline); synced as remaining
    #: delays and re-armed on promotion.
    pending_alarms: List[Tuple[int, Ticks]] = field(default_factory=list)
    #: Fork counter, used to match birth notices during recovery replay.
    fork_count: int = 0
    #: Rollforward bookkeeping.
    recovering: bool = False
    #: A halfback that lost its backup remembers which cluster held it, so
    #: a new backup is re-created there when the cluster returns (7.3).
    lost_backup_in: Optional[ClusterId] = None
    #: When a full sync is pending, the explicit target backup cluster.
    full_sync_target: Optional[ClusterId] = None
    #: Baseline mode (section 2's explicit-checkpointing comparison): copy
    #: the whole data space to the backup every N operations, stalling the
    #: primary for the full copy.  ``None`` = Auragen sync (the default).
    checkpoint_every: Optional[int] = None
    ops_since_checkpoint: int = 0
    #: Environmental / scheduling fields (never synced).
    block: Optional[BlockInfo] = None
    on_processor: Optional[int] = None
    quantum_used: Ticks = 0
    exit_code: Optional[int] = None
    #: Signals queued for delivery checks happen at step boundaries; the
    #: actual signal *messages* sit on the signal channel's routing entry.
    total_steps: int = 0

    def __post_init__(self) -> None:
        # Scheduler event labels, built once per process: the step engine
        # stamps one of these on every continuation event it schedules,
        # and per-event f-strings are measurable at OLTP event rates.
        pid = self.pid
        self.label_start = f"sched.start:{pid}"
        self.label_compute = f"sched.compute:{pid}"
        self.label_sys = f"sched.sys:{pid}"
        self.label_priv = f"sched.priv:{pid}"
        self.label_sync = f"sched.sync:{pid}"
        self.label_signal = f"sched.signal:{pid}"

    def alloc_fd(self, channel_id: ChannelId) -> Fd:
        """Assign the next file descriptor (deterministic counter)."""
        fd = self.next_fd
        self.next_fd += 1
        self.fds[fd] = channel_id
        return fd

    def channel_for_fd(self, fd: Fd) -> Optional[ChannelId]:
        return self.fds.get(fd)

    def sync_due(self) -> bool:
        """Has either sync trigger fired (reads count / execution time)?"""
        if self.sync_forced:
            return True
        if self.reads_since_sync >= self.sync_reads_threshold:
            return True
        if self.exec_since_sync >= self.sync_time_threshold:
            return True
        return False

    def note_exec(self, ticks: Ticks) -> None:
        self.exec_since_sync += ticks
        self.quantum_used += ticks


@dataclass
class BackupRecord:
    """The inactive backup: a PCB "less the kernel stack" (section 7.7)
    plus what the last sync message carried.

    Lives in the backup cluster's kernel.  ``program`` is the same
    immutable behaviour object as the primary's (code pages are shared
    through the file system in the real machine).  The saved message queues
    live on the backup routing entries, not here.
    """

    pid: Pid
    program: Program
    home_cluster: ClusterId            # where the primary runs
    backup_cluster: ClusterId          # where this record lives
    backup_mode: BackupMode
    family_head: Pid
    is_server: bool = False
    regs: Dict[str, Any] = field(default_factory=dict)
    fds: Dict[Fd, ChannelId] = field(default_factory=dict)
    next_fd: Fd = 0
    signal_channel: Optional[ChannelId] = None
    page_channel: Optional[ChannelId] = None
    fs_channel_fd: Optional[Fd] = None
    ps_channel_fd: Optional[Fd] = None
    sync_seq: int = 0
    sync_reads_threshold: int = 20
    sync_time_threshold: Ticks = 200_000
    pending_alarms: List[Tuple[int, Ticks]] = field(default_factory=list)
    #: Set once the first sync arrives; before that the record is only a
    #: birth notice shadow (no state to roll forward from — recovery
    #: restarts the process from its initial state instead).
    synced_once: bool = False


@dataclass
class BirthNotice:
    """Sent to the family's backup cluster on fork (section 7.7).

    Creates routing entries for fork-created channels and, during
    recovery, lets the re-executed fork give the child its original pid.
    """

    child_pid: Pid
    parent_pid: Pid
    family_head: Pid
    program: Program
    backup_mode: BackupMode
    #: (channel_id, kind) for each channel made at fork: the well-known
    #: signal / file-server / process-server channels.
    channels: List[Tuple[ChannelId, str]] = field(default_factory=list)
