"""Analytic models of sync overhead and recovery time.

The paper leaves its central knob — the sync interval (section 7.8) — to
be "set ... for each process" without guidance.  This module supplies the
classic rollback-recovery mathematics for choosing it, in the terms of
our cost model, and the E12 benchmark checks the closed form against the
simulator's measured sweep:

* **failure-free overhead rate**: a sync stalls the primary for
  ``stall = dirty_pages * sync_page_enqueue + sync_message_build`` and
  occupies the bus for the shipped pages; syncing every ``T`` ticks costs
  ``stall / T`` of the primary's time.
* **expected recovery time**: detection (one poll interval) + crash
  handling + rollforward of the work done since the last sync —
  on average ``T/2`` of re-execution plus page-in round trips.
* **optimal interval**: minimizing total expected overhead
  ``stall/T + (T/2)/MTBF`` gives the Young-style square-root law
  ``T* = sqrt(2 * stall * MTBF)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..config import CostModel, MachineConfig


class ModelError(Exception):
    """Raised for non-physical parameters (zero interval, zero MTBF)."""


@dataclass(frozen=True)
class SyncParameters:
    """Workload facts the model needs."""

    #: Pages dirtied between two syncs (the working set per interval).
    dirty_pages_per_sync: int
    #: Pages the process's address space spans (page-in bound on recovery).
    total_pages: int
    #: Mean ticks between failures of the process's cluster.
    mtbf: float


def sync_stall(costs: CostModel, dirty_pages: int) -> int:
    """Primary stall per sync (section 8.3: enqueue only)."""
    if dirty_pages < 0:
        raise ModelError("dirty_pages must be >= 0")
    return dirty_pages * costs.sync_page_enqueue + costs.sync_message_build


def overhead_rate(costs: CostModel, params: SyncParameters,
                  interval: float) -> float:
    """Fraction of primary time lost to syncing at the given interval."""
    if interval <= 0:
        raise ModelError("interval must be positive")
    return sync_stall(costs, params.dirty_pages_per_sync) / interval


def expected_rollforward(params: SyncParameters, interval: float) -> float:
    """Expected re-execution after a crash: uniformly distributed crash
    point means half an interval of lost work on average."""
    if interval <= 0:
        raise ModelError("interval must be positive")
    return interval / 2.0


def expected_recovery_time(config: MachineConfig, params: SyncParameters,
                           interval: float) -> float:
    """Detection + crash handling + page-ins + rollforward, in ticks."""
    costs = config.costs
    detection = config.poll_interval
    handling = 2_000  # crash-process base cost (recovery.crashhandler)
    page_ins = params.total_pages * (
        2 * costs.bus_latency + config.page_size * costs.bus_ticks_per_byte
        + costs.disk_block_access)
    return detection + handling + page_ins \
        + expected_rollforward(params, interval)


def total_cost_rate(config: MachineConfig, params: SyncParameters,
                    interval: float) -> float:
    """Long-run fraction of time lost to fault tolerance: failure-free
    sync overhead plus amortized recovery re-execution."""
    if params.mtbf <= 0:
        raise ModelError("mtbf must be positive")
    failure_rate = 1.0 / params.mtbf
    return (overhead_rate(config.costs, params, interval)
            + expected_rollforward(params, interval) * failure_rate)


def optimal_interval(costs: CostModel, params: SyncParameters) -> float:
    """The Young-style square-root law: minimize ``stall/T + T/(2 MTBF)``.

    d/dT = -stall/T^2 + 1/(2 MTBF) = 0  =>  T* = sqrt(2 * stall * MTBF).
    """
    if params.mtbf <= 0:
        raise ModelError("mtbf must be positive")
    stall = sync_stall(costs, params.dirty_pages_per_sync)
    return math.sqrt(2.0 * stall * params.mtbf)


def availability(config: MachineConfig, params: SyncParameters,
                 interval: float) -> float:
    """Steady-state availability of an affected process: the fraction of
    time it is not waiting on recovery, given one failure per MTBF."""
    recovery = expected_recovery_time(config, params, interval)
    return params.mtbf / (params.mtbf + recovery)


def checkpoint_overhead_rate(costs: CostModel, params: SyncParameters,
                             interval: float) -> float:
    """Same failure-free overhead under section 2's whole-space
    checkpointing: every interval copies *all* pages on the work
    processor."""
    if interval <= 0:
        raise ModelError("interval must be positive")
    stall = (params.total_pages * costs.checkpoint_page_copy
             + costs.sync_message_build)
    return stall / interval
