"""Analytic models: sync-interval optimization, availability, overhead."""

from .model import (ModelError, SyncParameters, availability,
                    checkpoint_overhead_rate, expected_recovery_time,
                    expected_rollforward, optimal_interval, overhead_rate,
                    sync_stall, total_cost_rate)

__all__ = [
    "ModelError",
    "SyncParameters",
    "availability",
    "checkpoint_overhead_rate",
    "expected_recovery_time",
    "expected_rollforward",
    "optimal_interval",
    "overhead_rate",
    "sync_stall",
    "total_cost_rate",
]
