"""Wall-clock performance harness (``repro bench``)."""

from .harness import (BenchError, BenchResult, TIMERS, WORKLOADS,
                      compare_to_baseline, load_report, report_dict,
                      resolve_timer, run_suite, write_report)

__all__ = [
    "BenchError",
    "BenchResult",
    "TIMERS",
    "WORKLOADS",
    "compare_to_baseline",
    "load_report",
    "report_dict",
    "resolve_timer",
    "run_suite",
    "write_report",
]
