"""Wall-clock performance harness (``repro bench``)."""

from .harness import (BENCH_REGISTRY, BenchError, BenchResult,
                      TIMERS, WORKLOADS, check_queue_name,
                      check_workload_names, compare_to_baseline,
                      load_report, report_dict, resolve_timer,
                      run_suite, write_report)

__all__ = [
    "BENCH_REGISTRY",
    "BenchError",
    "BenchResult",
    "TIMERS",
    "WORKLOADS",
    "check_queue_name",
    "check_workload_names",
    "compare_to_baseline",
    "load_report",
    "report_dict",
    "resolve_timer",
    "run_suite",
    "write_report",
]
