"""Wall-clock performance harness (``repro bench``)."""

from .harness import (BenchError, BenchResult, WORKLOADS,
                      compare_to_baseline, load_report, report_dict,
                      run_suite, write_report)

__all__ = [
    "BenchError",
    "BenchResult",
    "WORKLOADS",
    "compare_to_baseline",
    "load_report",
    "report_dict",
    "run_suite",
    "write_report",
]
