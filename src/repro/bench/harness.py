"""Wall-clock throughput harness: events/sec as a tracked metric.

The simulator is deterministic, so *what* a run computes never changes —
but how fast the event loop turns over decides how large a fault-injection
campaign or parameter sweep is practical.  This harness pins that down as
a number: it runs a small set of canonical workloads, times them, and
reports events/sec, messages/sec and wall-clock seconds per workload.

Methodology
-----------

* Each workload is built fresh for every round; only the event-loop run is
  timed, so machine construction never pollutes the throughput number.
  For the parallel fault-campaign workload the *pool* is construction
  too: workers are spawned and warmed before the first timed round.
* Each round is preceded by a ``gc.collect()`` and the *minimum* over
  rounds is reported: the minimum converges on the true cost, while
  means smear scheduler and allocator noise in.
* Runs are deterministic, so every round executes the identical event
  sequence — rounds differ only in measurement noise.
* Two timer modes.  Single-process workloads use ``time.process_time()``
  (CPU time of this process — immune to wall-clock noise from other
  processes).  That methodology is *blind to child processes*: a
  campaign sharded across ``--jobs`` workers burns its CPU in children,
  where ``process_time`` cannot see it, so multi-process workloads use
  ``time.perf_counter()`` wall time instead.  ``timer="auto"`` picks
  per workload; every report records which timer produced each number.

``repro bench`` (the CLI front end) writes the report to
``BENCH_core.json`` and can compare against a committed baseline, failing
when events/sec regresses beyond a threshold; see ``docs/performance.md``.
"""

from __future__ import annotations

import gc
import json
import platform
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..backup.modes import BackupMode
from ..config import MachineConfig
from ..core.machine import Machine
from ..scenario.registry import EntryMetadata, Registry
from ..workloads import (MemoryChurnProgram, build_bank_workload,
                         build_pipeline)


class BenchError(Exception):
    """Raised on malformed baseline files or unknown workload names."""


@dataclass
class BenchResult:
    """Measured throughput for one workload."""

    name: str
    events: int               #: events executed per round (deterministic)
    messages: Optional[int]   #: bus transmissions (None when untracked)
    virtual_time: int         #: final virtual clock, ticks
    wall_seconds: float       #: min seconds over rounds (see ``timer``)
    rounds: int
    timer: str = "process"    #: "process" (CPU of this process) or "wall"
    #: Virtual-tick latency digests per series (``request`` /
    #: ``read_wait`` / ``queue_wait`` -> count/mean/p50/p90/p99/max);
    #: deterministic, so identical every round.
    latency: Dict[str, Dict[str, object]] = None  # type: ignore[assignment]
    #: Worker accounting for jobs-capable workloads (None elsewhere):
    #: what was asked for (0 = auto) vs what ran after the CPU clamp.
    jobs_requested: Optional[int] = None
    jobs_effective: Optional[int] = None
    #: Event-queue backend the run used (pop-order-identical to the
    #: heap by contract, so this is a speed knob, never a semantics
    #: knob).
    queue: str = "heap"
    #: Intra-run dispatch-worker accounting (None when serial was not
    #: even requested): requested vs effective after the CPU/cluster
    #: clamp and the measured-ratio gate.
    run_jobs_requested: Optional[int] = None
    run_jobs_effective: Optional[int] = None
    #: Parallel-over-serial events/sec ratio measured this invocation
    #: (None when parallelism was off or degraded at construction).
    #: Below :data:`~repro.sim.parallel.RATIO_FLOOR` the run
    #: auto-degrades and the serial number is reported.
    measured_ratio: Optional[float] = None

    @property
    def events_per_sec(self) -> float:
        return self.events / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def messages_per_sec(self) -> Optional[float]:
        if self.messages is None or not self.wall_seconds:
            return None
        return self.messages / self.wall_seconds

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "name": self.name,
            "events": self.events,
            "messages": self.messages,
            "virtual_time": self.virtual_time,
            "wall_seconds": round(self.wall_seconds, 6),
            "events_per_sec": round(self.events_per_sec),
            "messages_per_sec": (round(self.messages_per_sec)
                                 if self.messages_per_sec is not None
                                 else None),
            "rounds": self.rounds,
            "timer": self.timer,
            "latency": self.latency or {},
        }
        if self.jobs_effective is not None:
            out["jobs_requested"] = self.jobs_requested
            out["jobs_effective"] = self.jobs_effective
        out["queue"] = self.queue
        if self.run_jobs_requested is not None:
            out["run_jobs_requested"] = self.run_jobs_requested
            out["run_jobs_effective"] = self.run_jobs_effective
            out["measured_ratio"] = self.measured_ratio
        return out


#: timer-mode name -> clock callable.  ``process_time`` cannot observe
#: CPU burned in child processes; anything multi-process must use wall.
TIMERS: Dict[str, Callable[[], float]] = {
    "process": time.process_time,
    "wall": time.perf_counter,
}


def resolve_timer(timer: str, multiprocess: bool) -> str:
    """``auto`` picks the right clock for the workload's process shape."""
    if timer == "auto":
        return "wall" if multiprocess else "process"
    if timer not in TIMERS:
        raise BenchError(f"unknown timer {timer!r}; "
                         f"choose from {sorted(TIMERS)} or 'auto'")
    return timer


# -- canonical workloads -----------------------------------------------------
#
# Each builder returns (machine, run_callable); the harness times only the
# run_callable.  ``quick`` shrinks the workload for CI smoke runs and
# ``engine`` carries the event-queue/run-jobs selection onto the config
# (the run itself is pop-order-identical under every combination).


def _engine_config(base: MachineConfig,
                   engine: Optional[Dict[str, object]]) -> MachineConfig:
    if engine:
        base.event_queue = engine.get("queue", "heap")  # type: ignore
        base.event_queue_params = dict(
            engine.get("queue_params") or {})  # type: ignore
        base.run_jobs = engine.get("run_jobs", 1)  # type: ignore
    return base.validate()


def _build_oltp(quick: bool,
                engine: Optional[Dict[str, object]] = None
                ) -> Tuple[Machine, Callable[[], None]]:
    machine = Machine(_engine_config(
        MachineConfig(n_clusters=4, seed=7, trace_enabled=False), engine))
    build_bank_workload(machine, n_clients=4,
                        txns_per_client=15 if quick else 60,
                        accounts=24, seed=7)
    return machine, lambda: machine.run_until_idle(max_events=30_000_000)


def _build_pipeline(quick: bool,
                    engine: Optional[Dict[str, object]] = None
                    ) -> Tuple[Machine, Callable[[], None]]:
    machine = Machine(_engine_config(
        MachineConfig(n_clusters=3, seed=7, trace_enabled=False), engine))
    build_pipeline(machine, stages=3, items=10 if quick else 40)
    return machine, lambda: machine.run_until_idle(max_events=30_000_000)


def _build_memory_churn(quick: bool,
                        engine: Optional[Dict[str, object]] = None
                        ) -> Tuple[Machine, Callable[[], None]]:
    machine = Machine(_engine_config(
        MachineConfig(n_clusters=3, seed=7, trace_enabled=False), engine))
    for _ in range(2):
        machine.spawn(MemoryChurnProgram(pages=4,
                                         rounds=30 if quick else 80,
                                         compute=2_000, total_pages=48),
                      backup_mode=BackupMode.QUARTERBACK)
    return machine, lambda: machine.run_until_idle(max_events=30_000_000)


def _latency_summaries(metrics) -> Dict[str, Dict[str, object]]:
    """Per-series latency digests from a machine's histograms (virtual
    ticks; empty series omitted)."""
    out: Dict[str, Dict[str, object]] = {}
    for key, name in (("request", "latency.request"),
                      ("read_wait", "latency.read_wait"),
                      ("queue_wait", "latency.queue_wait")):
        hist = metrics.histogram(name)
        if hist is not None and hist.count:
            out[key] = hist.summary()
    return out


def _timed_rounds(build: Callable[..., Tuple[Machine,
                                             Callable[[], None]]],
                  quick: bool, rounds: int, clock: Callable[[], float],
                  engine: Optional[Dict[str, object]]
                  ) -> Tuple[Machine, float]:
    best: Optional[float] = None
    machine: Optional[Machine] = None
    for _ in range(rounds):
        machine, run = build(quick, engine)
        gc.collect()
        start = clock()
        run()
        elapsed = clock() - start
        if best is None or elapsed < best:
            best = elapsed
    assert machine is not None and best is not None
    return machine, best


def _measure_machine(build: Callable[..., Tuple[Machine,
                                                Callable[[], None]]],
                     name: str, quick: bool, rounds: int,
                     timer: str = "auto", queue: str = "heap",
                     queue_params: Optional[Dict[str, object]] = None,
                     run_jobs: int = 1, **_ignored) -> BenchResult:
    timer = resolve_timer(timer, multiprocess=False)
    clock = TIMERS[timer]
    engine = {"queue": queue, "queue_params": dict(queue_params or {})}
    # The serial run is always measured: it is both the result (when
    # run_jobs == 1) and the honest baseline the parallel loop's
    # measured-ratio gate compares against.
    machine, serial_best = _timed_rounds(build, quick, rounds, clock,
                                         dict(engine, run_jobs=1))
    result = BenchResult(
        name=name,
        events=machine.sim.events_executed,
        messages=machine.metrics.counter("bus.transmissions"),
        virtual_time=machine.sim.now,
        wall_seconds=serial_best,
        rounds=rounds,
        timer=timer,
        latency=_latency_summaries(machine.metrics),
        queue=queue)
    if run_jobs == 1:
        return result
    parallel_machine, parallel_best = _timed_rounds(
        build, quick, rounds, clock, dict(engine, run_jobs=run_jobs))
    # Determinism contract: the parallel loop executes the identical
    # event sequence, so anything but equality here is a harness bug.
    assert parallel_machine.sim.events_executed == result.events, \
        (parallel_machine.sim.events_executed, result.events)
    loop = parallel_machine.parallel_loop()
    result.run_jobs_requested = run_jobs
    if loop.degraded and loop.measured_ratio is None:
        # Degraded at construction (CPU/cluster clamp): both timings ran
        # the serial path, so a ratio would measure noise, not overlap.
        result.run_jobs_effective = 1
        return result
    ratio = (serial_best / parallel_best) if parallel_best else 0.0
    loop.record_measured_ratio(ratio)
    result.measured_ratio = round(ratio, 3)
    result.run_jobs_effective = loop.jobs_effective
    if not loop.degraded:
        # The gate passed: parallel mode is the configuration under
        # test, so its timing is the reported number.
        result.wall_seconds = parallel_best
    return result


def _measure_campaign(quick: bool, rounds: int, timer: str = "auto",
                      jobs: int = 1,
                      cache_dir: Optional[str] = None) -> BenchResult:
    from ..exec.pool import CampaignPool, resolve_jobs
    from ..faults import run_campaign

    seeds = range(3) if quick else range(10)
    jobs_requested = jobs
    jobs = resolve_jobs(jobs)
    jobs = min(jobs, len(seeds))
    # The campaign is a jobs-capable workload, so ``auto`` always means
    # wall clock here — even when the effective job count degrades to
    # one, so the recorded number stays comparable across hosts and the
    # timer column states the clock actually used.
    timer = resolve_timer(timer, multiprocess=True)
    if jobs > 1 and timer == "process":
        raise BenchError("process timer cannot see child-process work; "
                         "use --timer wall (or auto) with --jobs > 1")
    clock = TIMERS[timer]
    pool: Optional[CampaignPool] = None
    if jobs > 1:
        # The pool is construction, not workload: spawn and warm the
        # workers before the first timed round.
        pool = CampaignPool(jobs=jobs, n_clusters=3, cache_dir=cache_dir)
        pool.warm()
    try:
        best: Optional[float] = None
        report = None
        for _ in range(rounds):
            gc.collect()
            start = clock()
            if pool is not None:
                report = pool.run(seeds)
            else:
                report = run_campaign(seeds, n_clusters=3,
                                      cache_dir=cache_dir)
            elapsed = clock() - start
            if best is None or elapsed < best:
                best = elapsed
    finally:
        if pool is not None:
            pool.close()
    assert report is not None and best is not None
    # The campaign builds and runs one machine per seed (plus failure-free
    # references); per-seed results record faulted-run events, end times
    # and bus transmissions, which aggregate into campaign-wide
    # events/sec and messages/sec.
    latency = {}
    summary = report.latency_summary()
    for key in ("request", "read_wait", "queue_wait"):
        if summary.get(key):
            latency[key] = summary[key]
    return BenchResult(
        name="fault-campaign",
        events=sum(result.events for result in report.results),
        messages=sum(result.transmissions for result in report.results),
        virtual_time=sum(result.end_time for result in report.results),
        wall_seconds=best,
        rounds=rounds,
        timer=timer,
        latency=latency,
        jobs_requested=jobs_requested,
        jobs_effective=jobs)


#: name -> measurement callable(quick, rounds, **options); options are
#: ``timer`` (all workloads), ``jobs``/``cache_dir`` (campaign only),
#: ``queue``/``queue_params``/``run_jobs`` (single-machine workloads).
#: Registration order is report order; the CLI validates ``--workloads``
#: against this registry up front (with did-you-mean suggestions).
BENCH_REGISTRY: Registry[Callable[..., BenchResult]] = \
    Registry("bench workload")

BENCH_REGISTRY.register(
    "oltp",
    lambda quick, rounds, **options: _measure_machine(
        _build_oltp, "oltp", quick, rounds, **options),
    EntryMetadata(description="the bank workload on four clusters"))
BENCH_REGISTRY.register(
    "pipeline",
    lambda quick, rounds, **options: _measure_machine(
        _build_pipeline, "pipeline", quick, rounds, **options),
    EntryMetadata(description="three-stage relay pipeline"))
BENCH_REGISTRY.register(
    "memory-churn",
    lambda quick, rounds, **options: _measure_machine(
        _build_memory_churn, "memory-churn", quick, rounds, **options),
    EntryMetadata(description="page-dirtying sync-traffic stress"))
BENCH_REGISTRY.register(
    "fault-campaign", _measure_campaign,
    EntryMetadata(description="seeded fault-injection sweep "
                              "(jobs-capable, wall clock)"))


class _WorkloadsView(dict):
    """Backward-compatible dict face of :data:`BENCH_REGISTRY`
    (``WORKLOADS["oltp"]`` keeps working for existing callers)."""

    def __init__(self, registry: Registry) -> None:
        super().__init__()
        self._registry = registry

    def _sync(self) -> None:
        self.clear()
        for name, entry, _ in self._registry.items():
            super().__setitem__(name, entry)

    def __iter__(self):
        self._sync()
        return super().__iter__()

    def __len__(self) -> int:
        self._sync()
        return super().__len__()

    def __contains__(self, name: object) -> bool:
        return name in self._registry

    def __getitem__(self, name: str) -> Callable[..., BenchResult]:
        return self._registry.get(name)

    def get(self, name, default=None):
        return (self._registry.get(name)
                if name in self._registry else default)

    def keys(self):
        self._sync()
        return super().keys()

    def items(self):
        self._sync()
        return super().items()

    def values(self):
        self._sync()
        return super().values()


WORKLOADS: Dict[str, Callable[..., BenchResult]] = \
    _WorkloadsView(BENCH_REGISTRY)


def check_workload_names(names: List[str]) -> None:
    """Reject unknown bench-workload names up front — raises
    :class:`BenchError` carrying the registry's did-you-mean message."""
    from ..scenario.registry import UnknownNameError
    try:
        BENCH_REGISTRY.check_names(names)
    except UnknownNameError as error:
        raise BenchError(str(error)) from None


def check_queue_name(name: str) -> None:
    """Reject an unknown event-queue backend name up front — raises
    :class:`BenchError` carrying the registry's did-you-mean message."""
    from ..scenario.registry import unknown_name_message
    from ..sim.queues import QUEUE_REGISTRY
    if name not in QUEUE_REGISTRY:
        raise BenchError(unknown_name_message(
            "event queue", name, QUEUE_REGISTRY.names()))


def run_suite(quick: bool = False, rounds: Optional[int] = None,
              workloads: Optional[List[str]] = None,
              timer: str = "auto", jobs: int = 1,
              cache_dir: Optional[str] = None,
              queue: str = "heap",
              queue_params: Optional[Dict[str, object]] = None,
              run_jobs: int = 1) -> List[BenchResult]:
    """Measure every requested workload; defaults to all of them.

    ``jobs``/``cache_dir`` parameterize the fault-campaign workload's
    parallel execution engine (``0`` jobs = one worker per CPU);
    ``queue``/``queue_params``/``run_jobs`` select the event-queue
    backend and intra-run dispatch workers for the single-machine
    workloads (pop-order-identical by contract — a speed knob only);
    ``timer="auto"`` times single-process workloads with
    ``process_time`` and multi-process ones with wall clock.
    """
    names = (list(BENCH_REGISTRY.names()) if workloads is None
             else workloads)
    check_workload_names(names)
    check_queue_name(queue)
    effective_rounds = rounds if rounds is not None else (2 if quick else 5)
    results = []
    for name in names:
        measure = BENCH_REGISTRY.get(name)
        options: Dict[str, object] = {"timer": timer}
        if name == "fault-campaign":
            options["jobs"] = jobs
            options["cache_dir"] = cache_dir
        else:
            options["queue"] = queue
            options["queue_params"] = queue_params
            options["run_jobs"] = run_jobs
        results.append(measure(quick, effective_rounds, **options))
    return results


# -- reports and baselines ---------------------------------------------------


def report_dict(results: List[BenchResult],
                quick: bool = False) -> Dict[str, object]:
    return {
        "schema": "repro-bench/1",
        "quick": quick,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "workloads": {result.name: result.as_dict() for result in results},
    }


def write_report(results: List[BenchResult], path: str,
                 quick: bool = False) -> None:
    with open(path, "w") as handle:
        json.dump(report_dict(results, quick=quick), handle, indent=2)
        handle.write("\n")


def load_report(path: str) -> Dict[str, object]:
    with open(path) as handle:
        data = json.load(handle)
    if not isinstance(data, dict) or "workloads" not in data:
        raise BenchError(f"{path}: not a bench report (no 'workloads' key)")
    return data


def compare_to_baseline(results: List[BenchResult],
                        baseline: Dict[str, object],
                        threshold: float = 0.25
                        ) -> List[Tuple[str, float, float, float]]:
    """Return one (name, current, baseline, drop) tuple per workload whose
    events/sec fell more than ``threshold`` below the baseline.

    Workloads absent from the baseline are skipped: a baseline committed
    before a new workload was added must not fail the comparison.
    """
    regressions = []
    workloads = baseline["workloads"]
    if not isinstance(workloads, dict):
        raise BenchError("baseline 'workloads' must be a mapping")
    for result in results:
        entry = workloads.get(result.name)
        if not entry:
            continue
        base_eps = float(entry["events_per_sec"])
        if base_eps <= 0:
            continue
        drop = 1.0 - result.events_per_sec / base_eps
        if drop > threshold:
            regressions.append((result.name, result.events_per_sec,
                                base_eps, drop))
    return regressions
